package noise

import (
	"math"
	"testing"

	"ddsim/internal/circuit"
	"ddsim/internal/sim"
)

func TestExtendedDiscrimination(t *testing.T) {
	if PaperDefaults().Extended() {
		t.Error("uniform model reports extended")
	}
	for _, m := range []Model{
		{Device: testDevice()},
		{Crosstalk: &Crosstalk{Strength: 0.01}},
		{Idle: &IdleNoise{Damping: 0.001}},
		PaperDefaults().Twirl(),
	} {
		if !m.Extended() {
			t.Errorf("model %v reports not extended", m)
		}
	}
}

func TestCompileGateNoise(t *testing.T) {
	m := Model{Device: testDevice()}
	c := circuit.New("g", 2)
	c.H(0).CX(0, 1)
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	on := plan.At(0) // h on qubit 0
	if on == nil || len(on.Pre) != 0 || len(on.Post2) != 0 {
		t.Fatalf("h channels = %+v", on)
	}
	// h: gate error 0.0005 (the * fallback), damping and dephasing
	// from qubit 0's T1/T2 over the 35 ns "h" entry.
	wantDamp, wantFlip := m.Device.decayProbs(0, 35)
	var kinds []ChanKind
	for _, ch := range on.Post {
		kinds = append(kinds, ch.Kind)
		switch ch.Kind {
		case ChanDepolarizing:
			if ch.P != 0.0005 {
				t.Errorf("h depol = %v, want the * fallback", ch.P)
			}
		case ChanDamping:
			if math.Abs(ch.P-wantDamp) > 1e-15 || ch.Event {
				t.Errorf("h damping = %+v, want exact-channel γ %v", ch, wantDamp)
			}
		case ChanPhaseFlip:
			if math.Abs(ch.P-wantFlip) > 1e-15 {
				t.Errorf("h flip = %v, want %v", ch.P, wantFlip)
			}
		}
	}
	if len(kinds) != 3 {
		t.Fatalf("h produced channels %v, want depol+damp+flip", kinds)
	}
	// cx: named gate error, two qubits' decay over 300 ns.
	on = plan.At(1)
	if on == nil || len(on.Post) != 6 {
		t.Fatalf("cx channels = %+v, want 3 per qubit", on)
	}
	if on.Post[0].Kind != ChanDepolarizing || on.Post[0].P != 0.01 {
		t.Errorf("cx depol = %+v, want the named 0.01 entry", on.Post[0])
	}
}

func TestCompileFirstTouchGetsNoIdleNoise(t *testing.T) {
	m := Model{Idle: &IdleNoise{Damping: 0.01, Dephasing: 0.02}}
	c := circuit.New("idle", 2)
	c.H(0).H(0).H(0).H(1) // qubit 1 idles 3 moments before its first gate
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if on := plan.At(i); on != nil && len(on.Pre) > 0 {
			t.Fatalf("op %d carries idle noise %+v; a qubit still in |0⟩ has nothing to decay", i, on.Pre)
		}
	}
}

func TestCompileIdleCompounding(t *testing.T) {
	m := Model{Idle: &IdleNoise{Damping: 0.01, Dephasing: 0.02}}
	c := circuit.New("idle", 2)
	// Ops are scheduled ASAP, so idle time only accrues when a later
	// multi-qubit gate forces a qubit to wait: here the cx lands at
	// moment 3 while qubit 1 last acted at moment 0 — 2 idle moments.
	c.H(1).H(0).H(0).H(0).CX(0, 1)
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	on := plan.At(4)
	if on == nil || len(on.Pre) != 2 {
		t.Fatalf("cx pre-channels = %+v, want damping+dephasing on the idled qubit", on)
	}
	k := 2.0
	wantDamp := 1 - math.Pow(1-0.01, k)
	wantFlip := (1 - math.Pow(1-2*0.02, k)) / 2
	if d := on.Pre[0]; d.Qubit != 1 || d.Kind != ChanDamping || math.Abs(d.P-wantDamp) > 1e-15 || d.Label != LabelIdle {
		t.Errorf("idle damping = %+v, want compounded %v", d, wantDamp)
	}
	if f := on.Pre[1]; f.Kind != ChanPhaseFlip || math.Abs(f.P-wantFlip) > 1e-15 || f.Label != LabelIdle {
		t.Errorf("idle dephasing = %+v, want compounded %v", f, wantFlip)
	}
	// The consecutive h(0) run never idles.
	for i := 1; i <= 3; i++ {
		if on := plan.At(i); on != nil && len(on.Pre) > 0 {
			t.Errorf("back-to-back gate %d carries idle noise", i)
		}
	}
}

func TestCompileCrosstalkOnTwoQubitGatesOnly(t *testing.T) {
	m := Model{Crosstalk: &Crosstalk{Strength: 0.03, ZZBias: 0.5}}
	c := circuit.New("xt", 3)
	c.H(0).CX(0, 1).CCX(0, 1, 2).CX(1, 2)
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 0, 1} { // h, cx, ccx, cx
		n := 0
		if on := plan.At(i); on != nil {
			n = len(on.Post2)
		}
		if n != want {
			t.Errorf("op %d: %d crosstalk channels, want %d", i, n, want)
		}
	}
	ch := plan.At(1).Post2[0]
	total, zz := 0.0, 0.0
	for _, term := range ch.Terms {
		if term.Prob < 0 {
			t.Fatalf("negative term %+v", term)
		}
		total += term.Prob
		if term.P0 == sim.PauliZ && term.P1 == sim.PauliZ {
			zz = term.Prob
		}
	}
	if math.Abs(total-0.03) > 1e-15 {
		t.Errorf("crosstalk mass = %v, want the configured 0.03", total)
	}
	wantZZ := 0.03*0.5 + 0.03*0.5/15
	if math.Abs(zz-wantZZ) > 1e-15 {
		t.Errorf("ZZ term = %v, want biased %v", zz, wantZZ)
	}
}

func TestCompileRejectsSmallDevice(t *testing.T) {
	m := Model{Device: testDevice()} // 5 calibrated qubits
	if _, err := m.Compile(circuit.GHZ(6)); err == nil {
		t.Fatal("6-qubit circuit accepted against a 5-qubit device")
	}
	if err := m.ValidateFor(6); err == nil {
		t.Fatal("ValidateFor(6) accepted a 5-qubit device")
	}
	if err := m.ValidateFor(5); err != nil {
		t.Fatal(err)
	}
}

func TestCompileEmptyPlan(t *testing.T) {
	m := Model{Crosstalk: &Crosstalk{Strength: 0}} // extended but massless
	if !m.Extended() {
		t.Fatal("crosstalk-bearing model not extended")
	}
	c := circuit.New("e", 2)
	c.H(0).CX(0, 1)
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Fatal("zero-strength crosstalk produced channels")
	}
	if plan.At(-1) != nil || plan.At(99) != nil {
		t.Fatal("out-of-range At not nil")
	}
}

func TestCompileTwirledPlanLabels(t *testing.T) {
	m := PaperDefaults().Twirl()
	c := circuit.New("tw", 1)
	c.H(0)
	plan, err := m.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	on := plan.At(0)
	if on == nil {
		t.Fatal("no channels on the gate")
	}
	sawTwirled := false
	for _, ch := range on.Post {
		if ch.Kind == ChanDamping {
			t.Errorf("twirled plan still carries a damping channel %+v", ch)
		}
		if ch.Kind == ChanPauli {
			sawTwirled = true
			if ch.Label != LabelTwirled {
				t.Errorf("twirled channel labelled %q", Labels[ch.Label])
			}
		}
	}
	if !sawTwirled {
		t.Fatal("no twirled Pauli channel in the plan")
	}
}

func TestCompileBarrierIsIgnored(t *testing.T) {
	m := Model{Idle: &IdleNoise{Damping: 0.01}}
	withBarrier := circuit.New("b", 2)
	withBarrier.H(0).H(1).Barrier().H(0).H(1)
	without := circuit.New("nb", 2)
	without.H(0).H(1).H(0).H(1)
	pb, err := m.Compile(withBarrier)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := m.Compile(without)
	if err != nil {
		t.Fatal(err)
	}
	// The barrier occupies no moment, so neither circuit accrues idle
	// time and the channel sequences agree op for op (barrier skipped).
	if !pb.Empty() || !pn.Empty() {
		t.Fatalf("lockstep gates accrued idle noise: barrier=%v plain=%v", pb.Empty(), pn.Empty())
	}
}
