package noise

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// applyKraus1 evolves a 2×2 density block through a Kraus set:
// ρ → Σ_k K ρ K†.
func applyKraus1(ks [][2][2]complex128, rho [2][2]complex128) [2][2]complex128 {
	var out [2][2]complex128
	for _, k := range ks {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						out[i][j] += k[i][a] * rho[a][b] * cmplx.Conj(k[j][b])
					}
				}
			}
		}
	}
	return out
}

func pauliOps() [4][2][2]complex128 {
	return [4][2][2]complex128{ident2(), pauliX(), pauliY(), pauliZ()}
}

// conj1 returns P ρ P† for a Pauli P (Hermitian, so P† = P).
func conj1(p, rho [2][2]complex128) [2][2]complex128 {
	return applyKraus1([][2][2]complex128{p}, rho)
}

func randRho(rng *rand.Rand) [2][2]complex128 {
	// A random PSD matrix with unit trace: A†A normalised.
	var a [2][2]complex128
	for i := range a {
		for j := range a[i] {
			a[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	var rho [2][2]complex128
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				rho[i][j] += cmplx.Conj(a[k][i]) * a[k][j]
			}
		}
	}
	tr := real(rho[0][0] + rho[1][1])
	for i := range rho {
		for j := range rho[i] {
			rho[i][j] /= complex(tr, 0)
		}
	}
	return rho
}

func maxDev(a, b [2][2]complex128) float64 {
	dev := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			dev = math.Max(dev, cmplx.Abs(a[i][j]-b[i][j]))
		}
	}
	return dev
}

// TestTwirlProbsSumToOne: a CPTP channel twirls into a probability
// distribution over I/X/Y/Z.
func TestTwirlProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		ch := newChan1(ChanDamping, 0, rng.Float64(), rng.Intn(2) == 0, LabelDamping)
		probs := TwirlProbs(ch.Kraus())
		sum := 0.0
		for _, p := range probs {
			if p < -1e-15 {
				t.Fatalf("negative twirl probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("twirl probabilities sum to %v (channel %s)", sum, ch.Key())
		}
	}
}

// TestTwirlMatchesPauliAverage verifies the defining property of the
// Pauli twirl on random states: the twirled channel equals the Pauli
// average (1/4)·Σ_P P† D(P ρ P†) P of the original channel, to 1e-12.
func TestTwirlMatchesPauliAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	paulis := pauliOps()
	for trial := 0; trial < 50; trial++ {
		gamma := rng.Float64()
		event := rng.Intn(2) == 0
		orig := newChan1(ChanDamping, 0, gamma, event, LabelDamping)
		tw := newPauliChan1(0, TwirlProbs(orig.Kraus()), LabelTwirled)

		rho := randRho(rng)
		// Pauli average of the original channel.
		var avg [2][2]complex128
		for _, p := range paulis {
			out := conj1(p, applyKraus1(orig.Kraus(), conj1(p, rho)))
			for i := range avg {
				for j := range avg[i] {
					avg[i][j] += out[i][j] / 4
				}
			}
		}
		got := applyKraus1(tw.Kraus(), rho)
		if dev := maxDev(got, avg); dev > 1e-12 {
			t.Fatalf("trial %d (γ=%v event=%t): twirl deviates from the Pauli average by %g",
				trial, gamma, event, dev)
		}
	}
}

// TestTwirlIdempotent: a Pauli channel is a fixed point of the twirl.
func TestTwirlIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		orig := newChan1(ChanDamping, 0, rng.Float64(), rng.Intn(2) == 0, LabelDamping)
		probs := TwirlProbs(orig.Kraus())
		tw := newPauliChan1(0, probs, LabelTwirled)
		again := TwirlProbs(tw.Kraus())
		for i := range probs {
			if math.Abs(again[i]-probs[i]) > 1e-12 {
				t.Fatalf("twirl not idempotent: %v vs %v", again, probs)
			}
		}
	}
}

// TestTwirlFixedPoints: depolarising and phase-flip channels are Pauli
// channels already; their twirl reproduces the analytic mixing
// weights.
func TestTwirlFixedPoints(t *testing.T) {
	p := 0.12
	depol := newChan1(ChanDepolarizing, 0, p, false, LabelDepolarizing)
	probs := TwirlProbs(depol.Kraus())
	want := [4]float64{1 - 3*p/4, p / 4, p / 4, p / 4}
	for i := range probs {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("depolarising twirl = %v, want %v", probs, want)
		}
	}
	flip := newChan1(ChanPhaseFlip, 0, p, false, LabelPhaseFlip)
	probs = TwirlProbs(flip.Kraus())
	want = [4]float64{1 - p, 0, 0, p}
	for i := range probs {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("phase-flip twirl = %v, want %v", probs, want)
		}
	}
}

// TestTwirlPreservesUnitalDiagonal: the twirl of a unital channel
// (here phase flip) acts identically on diagonal states.
func TestTwirlPreservesUnitalDiagonal(t *testing.T) {
	p := 0.3
	flip := newChan1(ChanPhaseFlip, 0, p, false, LabelPhaseFlip)
	tw := newPauliChan1(0, TwirlProbs(flip.Kraus()), LabelTwirled)
	for _, d := range []float64{0, 0.25, 0.5, 1} {
		rho := [2][2]complex128{{complex(d, 0), 0}, {0, complex(1-d, 0)}}
		a := applyKraus1(flip.Kraus(), rho)
		b := applyKraus1(tw.Kraus(), rho)
		if dev := maxDev(a, b); dev > 1e-12 {
			t.Fatalf("diagonal action deviates by %g at d=%v", dev, d)
		}
	}
}

// TestModelTwirlIdempotent: Model.Twirl marks the model and is
// idempotent at the model level too.
func TestModelTwirlIdempotent(t *testing.T) {
	m := PaperDefaults().Twirl()
	if !m.Twirled || !m.Extended() {
		t.Fatal("Twirl did not mark the model")
	}
	if m.Twirl() != m {
		t.Fatal("Twirl not idempotent")
	}
}
