package noise

import (
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddsim/internal/circuit"
)

func testDevice() *Device {
	return &Device{
		Name: "test-5q",
		Qubits: []DeviceQubit{
			{T1us: 80, T2us: 100},
			{T1us: 60, T2us: 60},
			{T1us: 100, T2us: 200}, // T1-limited: T2 = 2·T1
			{T1us: 50, T2us: 40},
			{T1us: 120, T2us: 90},
		},
		GateTimesNs:       map[string]float64{"h": 35, "cx": 300},
		DefaultGateTimeNs: 40,
		GateErrors:        map[string]float64{"cx": 0.01, "*": 0.0005},
	}
}

func TestParseDeviceRoundTrip(t *testing.T) {
	src := `{
		"name": "ibmq-ish",
		"qubits": [{"t1_us": 80, "t2_us": 100}, {"t1_us": 60, "t2_us": 60}],
		"gate_times_ns": {"cx": 300},
		"default_gate_time_ns": 40,
		"gate_errors": {"cx": 0.01, "*": 0.0005},
		"error_scale": 1.5
	}`
	d, err := ParseDevice([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "ibmq-ish" || len(d.Qubits) != 2 {
		t.Fatalf("parsed device = %+v", d)
	}
	if d.Qubits[0].T1us != 80 || d.Qubits[0].T2us != 100 {
		t.Errorf("qubit 0 = %+v", d.Qubits[0])
	}
	if d.GateTimesNs["cx"] != 300 || d.GateErrors["*"] != 0.0005 || d.ErrorScale != 1.5 {
		t.Errorf("tables = %+v", d)
	}
}

func TestLoadDevice(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.json")
	if err := os.WriteFile(path, []byte(`{"qubits":[{"t1_us":80,"t2_us":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Qubits) != 1 {
		t.Fatalf("loaded %d qubits", len(d.Qubits))
	}
	if _, err := LoadDevice(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"qubits": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDevice(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("invalid device error %v does not name the file", err)
	}
}

func TestParseDeviceErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"malformed JSON", `{"qubits": [`},
		{"no qubits", `{"qubits": []}`},
		{"zero T1", `{"qubits": [{"t1_us": 0, "t2_us": 1}]}`},
		{"negative T2", `{"qubits": [{"t1_us": 50, "t2_us": -1}]}`},
		{"T2 above 2·T1", `{"qubits": [{"t1_us": 50, "t2_us": 101}]}`},
		{"NaN T1", `{"qubits": [{"t1_us": "x", "t2_us": 1}]}`},
		{"zero gate time", `{"qubits": [{"t1_us": 50, "t2_us": 50}], "gate_times_ns": {"h": 0}}`},
		{"negative default time", `{"qubits": [{"t1_us": 50, "t2_us": 50}], "default_gate_time_ns": -1}`},
		{"error above 1", `{"qubits": [{"t1_us": 50, "t2_us": 50}], "gate_errors": {"h": 1.5}}`},
		{"negative error scale", `{"qubits": [{"t1_us": 50, "t2_us": 50}], "error_scale": -2}`},
	}
	for _, tc := range cases {
		if _, err := ParseDevice([]byte(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGateTimeResolution(t *testing.T) {
	d := testDevice()
	if got := d.gateTimeNs("cx"); got != 300 {
		t.Errorf("cx time = %v, want 300", got)
	}
	if got := d.gateTimeNs("t"); got != 40 {
		t.Errorf("unnamed gate time = %v, want the device default 40", got)
	}
	d.DefaultGateTimeNs = 0
	if got := d.gateTimeNs("t"); got != defaultGateTimeNs {
		t.Errorf("unnamed gate time = %v, want the built-in default %v", got, defaultGateTimeNs)
	}
}

func TestGateErrorResolution(t *testing.T) {
	d := testDevice()
	if got := d.gateError("cx", 0.123); got != 0.01 {
		t.Errorf("cx error = %v, want the table entry 0.01", got)
	}
	if got := d.gateError("h", 0.123); got != 0.0005 {
		t.Errorf("h error = %v, want the * fallback 0.0005", got)
	}
	d.GateErrors = nil
	if got := d.gateError("h", 0.123); got != 0.123 {
		t.Errorf("h error = %v, want the caller fallback", got)
	}
	d.GateErrors = map[string]float64{"cx": 0.5}
	d.ErrorScale = 3
	if got := d.gateError("cx", 0); got != 1 {
		t.Errorf("scaled error = %v, want clamped to 1", got)
	}
}

// TestDecayProbs checks the T1/T2 physics: p_damp = 1 − e^(−t/T1),
// p_flip = (1 − e^(−t/Tφ))/2 with 1/Tφ = 1/T2 − 1/(2·T1), and a zero
// flip rate in the T1-limited case T2 = 2·T1.
func TestDecayProbs(t *testing.T) {
	d := testDevice()
	tNs := 300.0
	pd, pf := d.decayProbs(0, tNs)
	t1, t2 := 80e3, 100e3
	wantD := 1 - math.Exp(-tNs/t1)
	invTphi := 1/t2 - 1/(2*t1)
	wantF := (1 - math.Exp(-tNs*invTphi)) / 2
	if math.Abs(pd-wantD) > 1e-15 || math.Abs(pf-wantF) > 1e-15 {
		t.Errorf("decayProbs(0) = %v, %v, want %v, %v", pd, pf, wantD, wantF)
	}

	// T1-limited qubit: all dephasing is relaxation-induced, no extra
	// phase flips.
	if _, pf := d.decayProbs(2, tNs); pf != 0 {
		t.Errorf("T1-limited qubit has pure dephasing %v", pf)
	}

	// Zero duration decays nothing.
	if pd, pf := d.decayProbs(0, 0); pd != 0 || pf != 0 {
		t.Errorf("decayProbs(t=0) = %v, %v", pd, pf)
	}

	// ErrorScale multiplies both probabilities.
	d.ErrorScale = 2
	pd2, pf2 := d.decayProbs(0, tNs)
	if math.Abs(pd2-2*pd) > 1e-15 || math.Abs(pf2-2*pf) > 1e-15 {
		t.Errorf("scaled decayProbs = %v, %v, want %v, %v", pd2, pf2, 2*pd, 2*pf)
	}
}

// krausComplete1 returns the deviation of ΣK†K from I for a
// single-qubit Kraus set.
func krausComplete1(ks [][2][2]complex128) float64 {
	var sum [2][2]complex128
	for _, k := range ks {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for l := 0; l < 2; l++ {
					sum[i][j] += cmplx.Conj(k[l][i]) * k[l][j]
				}
			}
		}
	}
	dev := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			dev = math.Max(dev, cmplx.Abs(sum[i][j]-want))
		}
	}
	return dev
}

// krausComplete2 is krausComplete1 for 4×4 Kraus sets.
func krausComplete2(ks [][4][4]complex128) float64 {
	var sum [4][4]complex128
	for _, k := range ks {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				for l := 0; l < 4; l++ {
					sum[i][j] += cmplx.Conj(k[l][i]) * k[l][j]
				}
			}
		}
	}
	dev := 0.0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			dev = math.Max(dev, cmplx.Abs(sum[i][j]-want))
		}
	}
	return dev
}

// randomDevice builds a random but valid calibration.
func randomDevice(rng *rand.Rand, n int) *Device {
	d := &Device{Name: "random", Qubits: make([]DeviceQubit, n)}
	for i := range d.Qubits {
		t1 := 10 + 190*rng.Float64() // µs
		t2 := (0.2 + 1.8*rng.Float64()) * t1
		if t2 > 2*t1 {
			t2 = 2 * t1
		}
		d.Qubits[i] = DeviceQubit{T1us: t1, T2us: t2}
	}
	d.GateTimesNs = map[string]float64{"h": 10 + 100*rng.Float64(), "cx": 100 + 400*rng.Float64()}
	d.DefaultGateTimeNs = 10 + 90*rng.Float64()
	d.GateErrors = map[string]float64{"cx": 0.05 * rng.Float64(), "*": 0.01 * rng.Float64()}
	if rng.Intn(2) == 0 {
		d.ErrorScale = 0.5 + rng.Float64()
	}
	return d
}

// TestDeviceChannelsCPTPProperty is the CPTP property test: every
// channel compiled from a randomized calibration — gate noise, idle
// decay, crosstalk, twirled or not — has a complete Kraus set
// (ΣK†K = I to 1e-12).
func TestDeviceChannelsCPTPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := circuit.New("cptp", 4)
	c.H(0).CX(0, 1).H(2).CX(1, 2).H(3).CX(2, 3).CX(0, 3).H(1)
	for trial := 0; trial < 200; trial++ {
		m := Model{Depolarizing: 0.001 * rng.Float64()}
		m.Device = randomDevice(rng, 4)
		if rng.Intn(2) == 0 {
			m.Crosstalk = &Crosstalk{Strength: 0.1 * rng.Float64(), ZZBias: rng.Float64()}
		}
		if rng.Intn(2) == 0 {
			m.Idle = &IdleNoise{MomentNs: 500 * rng.Float64()}
		}
		if rng.Intn(2) == 0 {
			m = m.Twirl()
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: random model invalid: %v", trial, err)
		}
		plan, err := m.Compile(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range c.Ops {
			on := plan.At(i)
			if on == nil {
				continue
			}
			for _, ch := range on.Pre {
				if dev := krausComplete1(ch.Kraus()); dev > 1e-12 {
					t.Fatalf("trial %d op %d: pre channel %s deviates %g", trial, i, ch.Key(), dev)
				}
			}
			for _, ch := range on.Post {
				if dev := krausComplete1(ch.Kraus()); dev > 1e-12 {
					t.Fatalf("trial %d op %d: post channel %s deviates %g", trial, i, ch.Key(), dev)
				}
			}
			for _, ch := range on.Post2 {
				if dev := krausComplete2(ch.Kraus()); dev > 1e-12 {
					t.Fatalf("trial %d op %d: crosstalk channel %s deviates %g", trial, i, ch.Key(), dev)
				}
			}
		}
	}
}

func TestModelScaleExtended(t *testing.T) {
	m := Model{Depolarizing: 0.001}
	m.Device = testDevice()
	m.Crosstalk = &Crosstalk{Strength: 0.02, ZZBias: 0.5}
	m.Idle = &IdleNoise{Damping: 0.001, Dephasing: 0.002}
	s := m.Scale(2)
	if s.Device == m.Device || s.Crosstalk == m.Crosstalk || s.Idle == m.Idle {
		t.Fatal("Scale shares sub-configuration pointers with the original")
	}
	if s.Device.ErrorScale != 2 {
		t.Errorf("scaled ErrorScale = %v, want 2 (1 implicit × 2)", s.Device.ErrorScale)
	}
	if s.Crosstalk.Strength != 0.04 || s.Idle.Damping != 0.002 || s.Idle.Dephasing != 0.004 {
		t.Errorf("scaled extension = %+v %+v", s.Crosstalk, s.Idle)
	}
	if m.Device.ErrorScale != 0 || m.Crosstalk.Strength != 0.02 {
		t.Error("Scale mutated the original model")
	}
}

func TestCanonicalExtension(t *testing.T) {
	if got := PaperDefaults().CanonicalExtension(); got != "" {
		t.Errorf("uniform model extension = %q, want empty", got)
	}
	m := Model{Device: testDevice(), Crosstalk: &Crosstalk{Strength: 0.02}}
	a, b := m.CanonicalExtension(), m.CanonicalExtension()
	if a == "" || a != b {
		t.Fatalf("extension not stable: %q vs %q", a, b)
	}
	// Map iteration order must not leak into the serialisation.
	for i := 0; i < 20; i++ {
		m2 := m
		d := *m.Device
		d.GateErrors = map[string]float64{"*": 0.0005, "cx": 0.01}
		d.GateTimesNs = map[string]float64{"cx": 300, "h": 35}
		m2.Device = &d
		if got := m2.CanonicalExtension(); got != a {
			t.Fatalf("extension moved under map rebuild:\n%q\nvs\n%q", got, a)
		}
	}
	m3 := m
	m3.Crosstalk = &Crosstalk{Strength: 0.03}
	if m3.CanonicalExtension() == a {
		t.Error("different crosstalk serialised identically")
	}
}
