// Device descriptions: per-qubit calibration data (T1/T2 relaxation
// times, per-gate error rates and durations) loaded from JSON, from
// which the noise model derives per-qubit damping/dephasing
// probabilities instead of the paper's uniform rates.
package noise

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// defaultGateTimeNs is the gate duration assumed when a device
// description names neither the gate nor a default.
const defaultGateTimeNs = 50

// DeviceQubit is one qubit's calibration: relaxation (T1) and
// dephasing (T2) times in microseconds. Physical devices satisfy
// T2 ≤ 2·T1; Validate enforces it, so the derived pure-dephasing
// rate 1/Tφ = 1/T2 − 1/(2·T1) is never negative.
type DeviceQubit struct {
	T1us float64 `json:"t1_us"`
	T2us float64 `json:"t2_us"`
}

// Device is a device description: the calibration data a per-qubit
// noise model is derived from. The JSON form is the on-disk schema
// read by LoadDevice and accepted by the ddsimd job API.
type Device struct {
	// Name labels the device (informational).
	Name string `json:"name,omitempty"`
	// Qubits lists per-qubit calibrations. A circuit simulated against
	// the device must not use more qubits than are described here.
	Qubits []DeviceQubit `json:"qubits"`
	// GateTimesNs maps gate names (circuit op names: "h", "cx", …) to
	// durations in nanoseconds, determining how much T1/T2 decay a
	// gate inflicts on its qubits.
	GateTimesNs map[string]float64 `json:"gate_times_ns,omitempty"`
	// DefaultGateTimeNs is the duration for gates absent from
	// GateTimesNs (0 means the built-in 50 ns default).
	DefaultGateTimeNs float64 `json:"default_gate_time_ns,omitempty"`
	// GateErrors maps gate names to depolarising error probabilities;
	// the key "*" supplies a fallback for unnamed gates. Gates matched
	// by neither fall back to the model's uniform Depolarizing rate.
	GateErrors map[string]float64 `json:"gate_errors,omitempty"`
	// ErrorScale multiplies every probability derived from the device
	// (0 means 1). Model.Scale scales it, so noise sweeps work on
	// calibrated models exactly as on uniform ones.
	ErrorScale float64 `json:"error_scale,omitempty"`
}

// LoadDevice reads and validates a device description from a JSON
// file.
func LoadDevice(path string) (*Device, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("noise: device %s: %w", path, err)
	}
	d, err := ParseDevice(data)
	if err != nil {
		return nil, fmt.Errorf("noise: device %s: %w", path, err)
	}
	return d, nil
}

// ParseDevice parses and validates a device description from JSON.
func ParseDevice(data []byte) (*Device, error) {
	var d Device
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("noise: device JSON: %v", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the device description: at least one qubit, finite
// positive relaxation times with T2 ≤ 2·T1, positive gate durations,
// error probabilities in [0, 1] and a non-negative error scale.
func (d *Device) Validate() error {
	if len(d.Qubits) == 0 {
		return fmt.Errorf("noise: device describes no qubits")
	}
	for i, q := range d.Qubits {
		if !(q.T1us > 0) || math.IsInf(q.T1us, 0) {
			return fmt.Errorf("noise: device qubit %d: t1_us %v must be positive and finite", i, q.T1us)
		}
		if !(q.T2us > 0) || math.IsInf(q.T2us, 0) {
			return fmt.Errorf("noise: device qubit %d: t2_us %v must be positive and finite", i, q.T2us)
		}
		if q.T2us > 2*q.T1us {
			return fmt.Errorf("noise: device qubit %d: t2_us %v exceeds 2·t1_us %v", i, q.T2us, 2*q.T1us)
		}
	}
	for name, t := range d.GateTimesNs {
		if !(t > 0) || math.IsInf(t, 0) {
			return fmt.Errorf("noise: device gate %q: duration %v ns must be positive and finite", name, t)
		}
	}
	if d.DefaultGateTimeNs < 0 || math.IsInf(d.DefaultGateTimeNs, 0) || math.IsNaN(d.DefaultGateTimeNs) {
		return fmt.Errorf("noise: device default gate time %v ns must be non-negative and finite", d.DefaultGateTimeNs)
	}
	for name, e := range d.GateErrors {
		if !(e >= 0 && e <= 1) {
			return fmt.Errorf("noise: device gate %q: error %v outside [0,1]", name, e)
		}
	}
	if d.ErrorScale < 0 || math.IsInf(d.ErrorScale, 0) || math.IsNaN(d.ErrorScale) {
		return fmt.Errorf("noise: device error_scale %v must be non-negative and finite", d.ErrorScale)
	}
	return nil
}

// scaleFactor is the effective ErrorScale (zero value means 1).
func (d *Device) scaleFactor() float64 {
	if d.ErrorScale == 0 {
		return 1
	}
	return d.ErrorScale
}

// gateTimeNs returns the duration of the named gate.
func (d *Device) gateTimeNs(name string) float64 {
	if t, ok := d.GateTimesNs[name]; ok {
		return t
	}
	if d.DefaultGateTimeNs > 0 {
		return d.DefaultGateTimeNs
	}
	return defaultGateTimeNs
}

// gateError returns the depolarising error probability of the named
// gate: an explicit entry, else the "*" fallback (both scaled by
// ErrorScale), else the caller's fallback rate unscaled — uniform
// model rates are scaled by Model.Scale already.
func (d *Device) gateError(name string, fallback float64) float64 {
	if e, ok := d.GateErrors[name]; ok {
		return clampProb(e * d.scaleFactor())
	}
	if e, ok := d.GateErrors["*"]; ok {
		return clampProb(e * d.scaleFactor())
	}
	return clampProb(fallback)
}

// decayProbs derives the amplitude-damping and phase-flip
// probabilities qubit q accumulates over tNs nanoseconds:
// p_damp = 1 − e^(−t/T1) and p_flip = (1 − e^(−t/Tφ))/2 with the
// pure-dephasing rate 1/Tφ = 1/T2 − 1/(2·T1) (zero when T2 = 2·T1,
// the T1-limited case). Both are scaled by ErrorScale and clamped
// into [0, 1].
func (d *Device) decayProbs(q int, tNs float64) (pDamp, pFlip float64) {
	if tNs <= 0 {
		return 0, 0
	}
	qb := d.Qubits[q]
	t1 := qb.T1us * 1000 // µs → ns
	t2 := qb.T2us * 1000
	s := d.scaleFactor()
	pDamp = clampProb((1 - math.Exp(-tNs/t1)) * s)
	invTphi := 1/t2 - 1/(2*t1)
	if invTphi > 0 {
		pFlip = clampProb((1 - math.Exp(-tNs*invTphi)) / 2 * s)
	}
	return pDamp, pFlip
}

func clampProb(p float64) float64 {
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
