// Concrete noise-channel instances: the compiled form of the extended
// model. A Chan1 is one single-qubit channel bound to a qubit, a
// Chan2 one correlated two-qubit Pauli channel bound to a gate's
// qubit pair. Both carry a stable key (for superoperator/Kraus-diagram
// caches in the exact engines), a Kraus view (for the density-matrix
// reference and CPTP tests) and a stochastic Apply (for trajectory
// sampling), so the Monte-Carlo and exact engines consume the same
// objects.
package noise

import (
	"fmt"
	"math/rand"
	"strings"

	"ddsim/internal/sim"
)

// ChanKind discriminates the single-qubit channel families.
type ChanKind uint8

// The single-qubit channel kinds.
const (
	// ChanDepolarizing applies I/X/Y/Z with probability p/4 each.
	ChanDepolarizing ChanKind = iota
	// ChanDamping is the amplitude-damping channel (Event selects the
	// paper's Section III event semantics vs the exact Example 6
	// channel with γ = P).
	ChanDamping
	// ChanPhaseFlip applies Z with probability p.
	ChanPhaseFlip
	// ChanPauli applies I/X/Y/Z with the probabilities in Probs — the
	// general Pauli channel produced by twirling.
	ChanPauli
)

// Telemetry label indices: the channel vocabulary reported by the
// ddsim_noise_channel_applications_total counter.
const (
	LabelDepolarizing = iota
	LabelDamping
	LabelPhaseFlip
	LabelTwirled
	LabelIdle
	LabelCrosstalk
	LabelCount
)

// Labels names the telemetry channel kinds, indexed by the Label*
// constants.
var Labels = [LabelCount]string{"depolarizing", "damping", "phaseflip", "twirled", "idle", "crosstalk"}

// ChannelCounts accumulates per-kind channel applications for one
// chunk of trajectories; the engine flushes it into telemetry.
type ChannelCounts [LabelCount]int64

// Chan1 is one single-qubit channel instance bound to a qubit.
type Chan1 struct {
	Kind  ChanKind
	Qubit int
	// Label indexes Labels for telemetry.
	Label int
	// P is the channel probability (γ for damping); unused for
	// ChanPauli.
	P float64
	// Event selects the event semantics for ChanDamping.
	Event bool
	// Probs are the I/X/Y/Z probabilities of a ChanPauli channel.
	Probs [4]float64

	key string
}

// newChan1 builds a channel instance with its cache key precomputed.
func newChan1(kind ChanKind, qubit int, p float64, event bool, label int) Chan1 {
	ch := Chan1{Kind: kind, Qubit: qubit, Label: label, P: p, Event: event}
	ch.key = ch.buildKey()
	return ch
}

// newPauliChan1 builds a general Pauli channel instance.
func newPauliChan1(qubit int, probs [4]float64, label int) Chan1 {
	ch := Chan1{Kind: ChanPauli, Qubit: qubit, Label: label, Probs: probs}
	ch.key = ch.buildKey()
	return ch
}

func (ch *Chan1) buildKey() string {
	switch ch.Kind {
	case ChanDepolarizing:
		return fmt.Sprintf("depol:%.17g", ch.P)
	case ChanDamping:
		return fmt.Sprintf("damp:%.17g:%t", ch.P, ch.Event)
	case ChanPhaseFlip:
		return fmt.Sprintf("flip:%.17g", ch.P)
	case ChanPauli:
		return fmt.Sprintf("pauli:%.17g,%.17g,%.17g,%.17g",
			ch.Probs[0], ch.Probs[1], ch.Probs[2], ch.Probs[3])
	}
	return "?"
}

// Key identifies the channel's operator content (not its qubit):
// channels with equal keys share superoperators and Kraus diagrams in
// the exact engines' caches.
func (ch *Chan1) Key() string { return ch.key }

// Kraus returns the channel's Kraus decomposition (ΣK†K = I).
func (ch *Chan1) Kraus() [][2][2]complex128 {
	switch ch.Kind {
	case ChanDepolarizing:
		p := ch.P
		return [][2][2]complex128{
			scale2(ident2(), complex(sqrt(1-3*p/4), 0)),
			scale2(pauliX(), complex(sqrt(p/4), 0)),
			scale2(pauliY(), complex(sqrt(p/4), 0)),
			scale2(pauliZ(), complex(sqrt(p/4), 0)),
		}
	case ChanDamping:
		p := ch.P
		if ch.Event {
			return [][2][2]complex128{
				scale2(ident2(), complex(sqrt(1-p), 0)),
				{{0, complex(sqrt(p), 0)}, {0, 0}},
				{{complex(sqrt(p), 0), 0}, {0, 0}},
			}
		}
		return [][2][2]complex128{
			{{0, complex(sqrt(p), 0)}, {0, 0}},
			{{1, 0}, {0, complex(sqrt(1-p), 0)}},
		}
	case ChanPhaseFlip:
		p := ch.P
		return [][2][2]complex128{
			scale2(ident2(), complex(sqrt(1-p), 0)),
			scale2(pauliZ(), complex(sqrt(p), 0)),
		}
	case ChanPauli:
		ops := [][2][2]complex128{ident2(), pauliX(), pauliY(), pauliZ()}
		out := make([][2][2]complex128, 0, 4)
		for i, p := range ch.Probs {
			if p > 0 {
				out = append(out, scale2(ops[i], complex(sqrt(p), 0)))
			}
		}
		return out
	}
	return nil
}

// Apply samples the channel on one trajectory. The Kind-specific draw
// patterns for depolarising, damping and phase flip replicate
// Model.ApplyAfterGate exactly, so a compiled uniform model consumes
// the same rng stream as the legacy path.
func (ch *Chan1) Apply(b sim.Backend, rng *rand.Rand) {
	switch ch.Kind {
	case ChanDepolarizing:
		if rng.Float64() < ch.P {
			b.ApplyPauli(sim.Pauli(rng.Intn(4)), ch.Qubit)
		}
	case ChanDamping:
		ch.applyDamping(b, rng)
	case ChanPhaseFlip:
		if rng.Float64() < ch.P {
			b.ApplyPauli(sim.PauliZ, ch.Qubit)
		}
	case ChanPauli:
		r := rng.Float64()
		acc := ch.Probs[1]
		if r < acc {
			b.ApplyPauli(sim.PauliX, ch.Qubit)
			return
		}
		acc += ch.Probs[2]
		if r < acc {
			b.ApplyPauli(sim.PauliY, ch.Qubit)
			return
		}
		acc += ch.Probs[3]
		if r < acc {
			b.ApplyPauli(sim.PauliZ, ch.Qubit)
		}
	}
}

// applyDamping mirrors Model.applyDamping for a bound channel.
func (ch *Chan1) applyDamping(b sim.Backend, rng *rand.Rand) {
	q := ch.Qubit
	if ch.Event {
		if rng.Float64() >= ch.P {
			return
		}
		p1 := b.ProbOne(q)
		if p1 <= 0 {
			return
		}
		if p1 >= 1 || rng.Float64() < p1 {
			b.ApplyDamping(q, 1, true, p1)
		} else {
			b.ApplyDamping(q, 1, false, 1-p1)
		}
		return
	}
	p1 := b.ProbOne(q)
	pFire := ch.P * p1
	if pFire <= 0 {
		return
	}
	if rng.Float64() < pFire {
		b.ApplyDamping(q, ch.P, true, pFire)
	} else {
		b.ApplyDamping(q, ch.P, false, 1-pFire)
	}
}

// PairTerm is one non-identity branch of a correlated two-qubit Pauli
// channel: the pair P0⊗P1 fires with probability Prob.
type PairTerm struct {
	P0, P1 sim.Pauli
	Prob   float64
}

// Chan2 is one correlated two-qubit Pauli channel bound to an ordered
// qubit pair (Q0 indexes the high bit of the 2-qubit basis |Q0 Q1⟩).
type Chan2 struct {
	Q0, Q1 int
	// Label indexes Labels for telemetry.
	Label int
	// Terms are the non-identity branches; the identity branch holds
	// the remaining 1 − ΣProb.
	Terms []PairTerm

	key string
}

// newChan2 builds a two-qubit channel with its cache key precomputed.
func newChan2(q0, q1 int, terms []PairTerm, label int) Chan2 {
	ch := Chan2{Q0: q0, Q1: q1, Label: label, Terms: terms}
	var sb strings.Builder
	sb.WriteString("pauli2:")
	for i, t := range terms {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%s%s=%.17g", t.P0, t.P1, t.Prob)
	}
	ch.key = sb.String()
	return ch
}

// Key identifies the channel's operator content; see Chan1.Key.
func (ch *Chan2) Key() string { return ch.key }

// pauliMat2 returns the 2×2 matrix of a Pauli operator.
func pauliMat2(p sim.Pauli) [2][2]complex128 {
	switch p {
	case sim.PauliX:
		return pauliX()
	case sim.PauliY:
		return pauliY()
	case sim.PauliZ:
		return pauliZ()
	}
	return ident2()
}

// PauliPairMat returns the 4×4 matrix of P0⊗P1 with P0 on the high
// bit, the operand convention of sim.Backend.ApplyKraus2.
func PauliPairMat(p0, p1 sim.Pauli) [4][4]complex128 {
	a, b := pauliMat2(p0), pauliMat2(p1)
	var out [4][4]complex128
	for i0 := 0; i0 < 2; i0++ {
		for i1 := 0; i1 < 2; i1++ {
			for j0 := 0; j0 < 2; j0++ {
				for j1 := 0; j1 < 2; j1++ {
					out[i0*2+i1][j0*2+j1] = a[i0][j0] * b[i1][j1]
				}
			}
		}
	}
	return out
}

// Kraus returns the channel's 4×4 Kraus decomposition: the scaled
// identity branch first, then one scaled Pauli pair per term.
func (ch *Chan2) Kraus() [][4][4]complex128 {
	total := 0.0
	for _, t := range ch.Terms {
		total += t.Prob
	}
	out := make([][4][4]complex128, 0, len(ch.Terms)+1)
	if total < 1 {
		id := PauliPairMat(sim.PauliI, sim.PauliI)
		out = append(out, scale4(id, complex(sqrt(1-total), 0)))
	}
	for _, t := range ch.Terms {
		if t.Prob > 0 {
			out = append(out, scale4(PauliPairMat(t.P0, t.P1), complex(sqrt(t.Prob), 0)))
		}
	}
	return out
}

// Apply samples the channel on one trajectory: a single rng draw
// selects the identity or one correlated Pauli pair. Pauli branches
// are trace-preserving, so no renormalisation is needed.
func (ch *Chan2) Apply(b sim.Backend, rng *rand.Rand) {
	r := rng.Float64()
	acc := 0.0
	for _, t := range ch.Terms {
		acc += t.Prob
		if r < acc {
			b.ApplyKraus2(ch.Q0, ch.Q1, PauliPairMat(t.P0, t.P1), 1)
			return
		}
	}
}

func scale4(m [4][4]complex128, s complex128) [4][4]complex128 {
	for i := range m {
		for j := range m[i] {
			m[i][j] *= s
		}
	}
	return m
}

// TwirlProbs computes the Pauli twirl of a single-qubit channel: the
// Pauli channel with p_P = Σ_k |tr(P†K_k)|²/4, the chi-matrix
// diagonal of the Kraus set. For a CPTP input the probabilities sum
// to 1.
func TwirlProbs(kraus [][2][2]complex128) [4]float64 {
	paulis := [4][2][2]complex128{ident2(), pauliX(), pauliY(), pauliZ()}
	var probs [4]float64
	for _, k := range kraus {
		for i, p := range paulis {
			// tr(P†K)/2 with P Hermitian: Σ_ab conj(P[a][b])·K[a][b] / 2.
			var tr complex128
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					tr += conj(p[a][b]) * k[a][b]
				}
			}
			tr /= 2
			probs[i] += real(tr)*real(tr) + imag(tr)*imag(tr)
		}
	}
	return probs
}

// Super1 vectorises a single-qubit Kraus set into its 4×4
// superoperator; see channelSuper.
func Super1(kraus [][2][2]complex128) [4][4]complex128 {
	return channelSuper(kraus)
}

// Super2 vectorises a two-qubit Kraus set into the 16×16
// superoperator acting on the vectorised 4×4 block
// [ρ(ij)] with row index i*4+j: S[(i,j),(a,b)] = Σ_k K[i][a]·conj(K[j][b]).
func Super2(kraus [][4][4]complex128) [16][16]complex128 {
	var s [16][16]complex128
	for _, k := range kraus {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				for a := 0; a < 4; a++ {
					for b := 0; b < 4; b++ {
						s[i*4+j][a*4+b] += k[i][a] * conj(k[j][b])
					}
				}
			}
		}
	}
	return s
}
