// Package noise implements the paper's stochastic error model
// (Sections II-B and III): after every executed gate, each touched
// qubit is subjected to
//
//   - a depolarising gate error: with probability p the qubit is set
//     to a random state, realised by applying one of I, X, Y, Z with
//     probability p/4 each (Example 3);
//   - an amplitude-damping (T1) error: the state-dependent channel of
//     Example 6 — the decay branch fires with probability
//     p·P(qubit = 1);
//   - a phase-flip (T2) error: with probability p a Z is applied.
//
// The model is backend-independent: it drives any sim.Backend, so the
// same stochastic trajectories can be simulated with decision
// diagrams, state vectors or sparse operators.
package noise

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"ddsim/internal/sim"
)

// Model holds the three per-gate/per-qubit error probabilities.
// The zero Model is noise-free. The struct marshals to JSON for the
// ddsimd job API.
type Model struct {
	// Depolarizing is the gate-error probability (paper: 0.1 %).
	Depolarizing float64 `json:"depolarizing,omitempty"`
	// Damping is the amplitude-damping (T1) probability (paper: 0.2 %).
	Damping float64 `json:"damping,omitempty"`
	// PhaseFlip is the phase-flip (T2) probability (paper: 0.1 %).
	PhaseFlip float64 `json:"phase_flip,omitempty"`
	// DampingAsEvent selects between the two T1 semantics the paper
	// describes:
	//
	//   - false (default): the *exact channel* of Example 6 — Kraus
	//     operators A0/A1 with parameter p are branch-selected on
	//     every touched qubit, so even the no-decay branch slightly
	//     deforms the state (A1 = diag(1, √(1−p))).
	//   - true: the *event* semantics of Section III ("we mimic the
	//     effect of this error with probability p and leave the state
	//     untouched with probability 1−p"): with probability p a full
	//     T1 relaxation event occurs, branch-selected between decay
	//     (|1⟩ component dropped to |0⟩) and no-decay projection; with
	//     probability 1−p the state is bit-for-bit untouched.
	//
	// Both are trace-preserving channels (see KrausOps) and both are
	// validated against the exact density-matrix reference. The event
	// form is what the paper's evaluation performance implies: the
	// exact-channel form deforms every touched qubit on every gate,
	// which destroys product structure and blows decision diagrams up
	// even on structure-friendly circuits such as Bernstein–Vazirani.
	DampingAsEvent bool `json:"damping_as_event,omitempty"`

	// Device supplies per-qubit calibrated noise: T1/T2-derived
	// damping/dephasing per gate and per-gate depolarising error
	// rates, overriding the uniform probabilities above. See Device
	// and LoadDevice.
	Device *Device `json:"device,omitempty"`
	// Crosstalk adds a correlated two-qubit Pauli channel after every
	// two-qubit gate.
	Crosstalk *Crosstalk `json:"crosstalk,omitempty"`
	// Idle adds time-dependent idling noise: qubits accumulate decay
	// over the circuit moments they sit out between gates.
	Idle *IdleNoise `json:"idle,omitempty"`
	// Twirled replaces every amplitude-damping channel by its Pauli
	// twirl (see Model.Twirl and TwirlProbs). Depolarising and
	// phase-flip channels are Pauli channels already — twirl fixed
	// points — and pass through unchanged.
	Twirled bool `json:"twirled,omitempty"`
}

// PaperDefaults returns the error rates used throughout the paper's
// evaluation (Section V), with event-style T1 semantics.
func PaperDefaults() Model {
	return Model{Depolarizing: 0.001, Damping: 0.002, PhaseFlip: 0.001, DampingAsEvent: true}
}

// Enabled reports whether any channel has a non-zero probability.
func (m Model) Enabled() bool {
	if m.Depolarizing > 0 || m.Damping > 0 || m.PhaseFlip > 0 {
		return true
	}
	if m.Device != nil {
		return true
	}
	if m.Crosstalk != nil && m.Crosstalk.Strength > 0 {
		return true
	}
	if m.Idle != nil && (m.Idle.Damping > 0 || m.Idle.Dephasing > 0) {
		return true
	}
	return false
}

// Extended reports whether the model uses any channel beyond the
// paper's uniform per-gate trio. Extended models run through a
// compiled Plan; plain models keep the legacy per-gate path (and the
// legacy rng stream, result caches and JobKeys).
func (m Model) Extended() bool {
	return m.Device != nil || m.Crosstalk != nil || m.Idle != nil || m.Twirled
}

// Twirl returns the model with every damping channel replaced by its
// Pauli-twirl approximation; idempotent.
func (m Model) Twirl() Model {
	m.Twirled = true
	return m
}

// Scale returns the model with every error probability multiplied by
// s, preserving the damping semantics — the unit of noise sweeps.
// Device-derived probabilities scale through the device's ErrorScale;
// sub-configurations are copied, so scaled models share nothing with
// the original. Scaled probabilities above 1 are rejected by Validate
// as usual.
func (m Model) Scale(s float64) Model {
	m.Depolarizing *= s
	m.Damping *= s
	m.PhaseFlip *= s
	if m.Device != nil {
		d := *m.Device
		d.ErrorScale = d.scaleFactor() * s
		m.Device = &d
	}
	if m.Crosstalk != nil {
		x := *m.Crosstalk
		x.Strength *= s
		m.Crosstalk = &x
	}
	if m.Idle != nil {
		id := *m.Idle
		id.Damping *= s
		id.Dephasing *= s
		m.Idle = &id
	}
	return m
}

// Validate checks that all probabilities lie in [0, 1] and that any
// device, crosstalk and idle configurations are themselves valid.
func (m Model) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"depolarizing", m.Depolarizing},
		{"damping", m.Damping},
		{"phase-flip", m.PhaseFlip},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("noise: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if m.Device != nil {
		if err := m.Device.Validate(); err != nil {
			return err
		}
	}
	if m.Crosstalk != nil {
		if err := m.Crosstalk.Validate(); err != nil {
			return err
		}
	}
	if m.Idle != nil {
		if err := m.Idle.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ValidateFor validates the model against a register size: a device
// description must calibrate at least numQubits qubits.
func (m Model) ValidateFor(numQubits int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Device != nil && len(m.Device.Qubits) < numQubits {
		return fmt.Errorf("noise: device %q describes %d qubits, circuit needs %d",
			m.Device.Name, len(m.Device.Qubits), numQubits)
	}
	return nil
}

// String summarises the model.
func (m Model) String() string {
	s := fmt.Sprintf("depol=%.4f damp=%.4f flip=%.4f", m.Depolarizing, m.Damping, m.PhaseFlip)
	if m.Device != nil {
		s += fmt.Sprintf(" device=%s(%dq)", m.Device.Name, len(m.Device.Qubits))
	}
	if m.Crosstalk != nil {
		s += fmt.Sprintf(" xtalk=%.4f", m.Crosstalk.Strength)
	}
	if m.Idle != nil {
		s += fmt.Sprintf(" idle=%.4f/%.4f", m.Idle.Damping, m.Idle.Dephasing)
	}
	if m.Twirled {
		s += " twirled"
	}
	return s
}

// CanonicalExtension serialises the extended-channel configuration
// into a stable string for JobKey's v3 appendix: every field in a
// fixed order, map entries sorted by key, floats at full precision.
// Non-extended models serialise to "".
func (m Model) CanonicalExtension() string {
	if !m.Extended() {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "twirled=%t\n", m.Twirled)
	if d := m.Device; d != nil {
		fmt.Fprintf(&sb, "device=%s\n", d.Name)
		for i, q := range d.Qubits {
			fmt.Fprintf(&sb, "qubit=%d:%.17g,%.17g\n", i, q.T1us, q.T2us)
		}
		for _, k := range sortedKeys(d.GateTimesNs) {
			fmt.Fprintf(&sb, "gate_time=%s:%.17g\n", k, d.GateTimesNs[k])
		}
		fmt.Fprintf(&sb, "default_gate_time=%.17g\n", d.DefaultGateTimeNs)
		for _, k := range sortedKeys(d.GateErrors) {
			fmt.Fprintf(&sb, "gate_error=%s:%.17g\n", k, d.GateErrors[k])
		}
		fmt.Fprintf(&sb, "error_scale=%.17g\n", d.ErrorScale)
	}
	if x := m.Crosstalk; x != nil {
		fmt.Fprintf(&sb, "crosstalk=%.17g,%.17g\n", x.Strength, x.ZZBias)
	}
	if id := m.Idle; id != nil {
		fmt.Fprintf(&sb, "idle=%.17g,%.17g,%.17g\n", id.Damping, id.Dephasing, id.MomentNs)
	}
	return sb.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ApplyAfterGate stochastically injects errors on each qubit a gate
// touched, in the fixed order depolarising → damping → phase flip.
// All randomness comes from rng, so trajectories are reproducible
// given a seed.
func (m Model) ApplyAfterGate(b sim.Backend, qubits []int, rng *rand.Rand) {
	for _, q := range qubits {
		if m.Depolarizing > 0 && rng.Float64() < m.Depolarizing {
			// The depolarised qubit receives I, X, Y or Z uniformly.
			b.ApplyPauli(sim.Pauli(rng.Intn(4)), q)
		}
		if m.Damping > 0 {
			m.applyDamping(b, q, rng)
		}
		if m.PhaseFlip > 0 && rng.Float64() < m.PhaseFlip {
			b.ApplyPauli(sim.PauliZ, q)
		}
	}
}

// applyDamping realises the T1 error in the configured semantics.
func (m Model) applyDamping(b sim.Backend, q int, rng *rand.Rand) {
	if m.DampingAsEvent {
		// Section III event semantics: untouched with prob 1−p.
		if rng.Float64() >= m.Damping {
			return
		}
		// A relaxation event: full-strength damping (γ = 1), branch
		// probabilities from the state as in Example 6.
		p1 := b.ProbOne(q)
		if p1 <= 0 {
			return // qubit already in |0⟩: the event is invisible
		}
		if p1 >= 1 || rng.Float64() < p1 {
			b.ApplyDamping(q, 1, true, p1)
		} else {
			b.ApplyDamping(q, 1, false, 1-p1)
		}
		return
	}
	// Exact-channel semantics (Example 6 with γ = p): the branch
	// probabilities depend on the current state through P(q = 1).
	p1 := b.ProbOne(q)
	pFire := m.Damping * p1 // ‖A0|ψ⟩‖²
	if pFire <= 0 {
		// Qubit is (numerically) in |0⟩; A1 acts as identity.
		return
	}
	if rng.Float64() < pFire {
		b.ApplyDamping(q, m.Damping, true, pFire)
	} else {
		b.ApplyDamping(q, m.Damping, false, 1-pFire)
	}
}

// KrausOps returns the explicit Kraus decomposition of each channel
// for a damping/depolarising/flip parameter set; used by the exact
// density-matrix reference simulator and by completeness tests.
// Each channel is a slice of 2×2 Kraus operators satisfying
// Σ K†K = I.
func (m Model) KrausOps() map[string][][2][2]complex128 {
	out := make(map[string][][2][2]complex128)
	if m.Depolarizing > 0 {
		p := m.Depolarizing
		s := func(f float64) complex128 { return complex(f, 0) }
		// With probability p the qubit is replaced by a uniformly
		// random Pauli application (including I): the channel
		// ρ → (1−p)ρ + p/4 (ρ + XρX + YρY + ZρZ).
		out["depolarizing"] = [][2][2]complex128{
			scale2(ident2(), s(sqrt(1-3*p/4))),
			scale2(pauliX(), s(sqrt(p/4))),
			scale2(pauliY(), s(sqrt(p/4))),
			scale2(pauliZ(), s(sqrt(p/4))),
		}
	}
	if m.Damping > 0 {
		p := m.Damping
		if m.DampingAsEvent {
			// With probability p a full relaxation event (γ = 1):
			// K = {√(1−p)·I, √p·|0⟩⟨1|, √p·|0⟩⟨0|}.
			out["damping"] = [][2][2]complex128{
				scale2(ident2(), complex(sqrt(1-p), 0)),
				{{0, complex(sqrt(p), 0)}, {0, 0}},
				{{complex(sqrt(p), 0), 0}, {0, 0}},
			}
		} else {
			out["damping"] = [][2][2]complex128{
				{{0, complex(sqrt(p), 0)}, {0, 0}},
				{{1, 0}, {0, complex(sqrt(1-p), 0)}},
			}
		}
	}
	if m.PhaseFlip > 0 {
		p := m.PhaseFlip
		out["phaseflip"] = [][2][2]complex128{
			scale2(ident2(), complex(sqrt(1-p), 0)),
			scale2(pauliZ(), complex(sqrt(p), 0)),
		}
	}
	return out
}

// ResetKraus returns the Kraus decomposition of the reset-to-|0⟩
// channel, K0 = |0⟩⟨0| and K1 = |0⟩⟨1| — trace preserving, final
// qubit state |0⟩ regardless of prior state or entanglement. Both
// density-matrix simulators realise circuit resets with it.
func ResetKraus() [][2][2]complex128 {
	return [][2][2]complex128{
		{{1, 0}, {0, 0}}, // |0⟩⟨0|
		{{0, 1}, {0, 0}}, // |0⟩⟨1|
	}
}

// Superoperator returns the composite single-qubit noise channel of
// the model — depolarising, then damping, then phase flip, the
// driver's order — as a 4×4 superoperator acting on the vectorised
// 2×2 block [ρ00, ρ01, ρ10, ρ11] of each touched qubit, and whether
// any channel is enabled. Dense density-matrix simulators apply it in
// a single O(4^n) pass per qubit instead of one clone-and-conjugate
// pass per Kraus operator, which is the exact engine's hot path.
func (m Model) Superoperator() ([4][4]complex128, bool) {
	if !m.Enabled() {
		return identSuper(), false
	}
	ops := m.KrausOps()
	s := identSuper()
	for _, name := range []string{"depolarizing", "damping", "phaseflip"} {
		if k, ok := ops[name]; ok {
			s = composeSuper(channelSuper(k), s)
		}
	}
	return s, true
}

// channelSuper vectorises one Kraus set: S[(i,j),(a,b)] = Σ_k
// K[i][a]·conj(K[j][b]), so that (Σ_k KρK†) = S·vec(ρ) blockwise.
func channelSuper(kraus [][2][2]complex128) [4][4]complex128 {
	var s [4][4]complex128
	for _, k := range kraus {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						s[i*2+j][a*2+b] += k[i][a] * conj(k[j][b])
					}
				}
			}
		}
	}
	return s
}

// composeSuper returns after·before (matrix product), the channel
// composition "before first".
func composeSuper(after, before [4][4]complex128) [4][4]complex128 {
	var out [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				out[i][j] += after[i][k] * before[k][j]
			}
		}
	}
	return out
}

func identSuper() [4][4]complex128 {
	var s [4][4]complex128
	for i := 0; i < 4; i++ {
		s[i][i] = 1
	}
	return s
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func sqrt(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Sqrt(x)
}

func ident2() [2][2]complex128 { return [2][2]complex128{{1, 0}, {0, 1}} }
func pauliX() [2][2]complex128 { return [2][2]complex128{{0, 1}, {1, 0}} }
func pauliY() [2][2]complex128 {
	return [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
}
func pauliZ() [2][2]complex128 { return [2][2]complex128{{1, 0}, {0, -1}} }

func scale2(m [2][2]complex128, s complex128) [2][2]complex128 {
	for i := range m {
		for j := range m[i] {
			m[i][j] *= s
		}
	}
	return m
}
