package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-5, 100, 5)
	if b[0] != 1e-5 {
		t.Fatalf("first bound %g, want 1e-5", b[0])
	}
	if last := b[len(b)-1]; last < 100 {
		t.Fatalf("last bound %g does not reach 100", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
		ratio := b[i] / b[i-1]
		if want := math.Pow(10, 0.2); math.Abs(ratio-want) > 1e-9 {
			t.Fatalf("bucket ratio %g at %d, want %g", ratio, i, want)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "help.", []float64{0.001, 0.01, 0.1, 1})

	// 100 observations in the (0.001, 0.01] bucket, 10 in (0.1, 1].
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if h.Count() != 110 {
		t.Fatalf("Count = %d, want 110", h.Count())
	}
	if got, want := h.Sum(), 100*0.005+10*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	// p50 lands mid-bucket-2: within (0.001, 0.01].
	if q := h.Quantile(0.5); q <= 0.001 || q > 0.01 {
		t.Fatalf("p50 = %g, want within (0.001, 0.01]", q)
	}
	// p99 lands in the (0.1, 1] bucket.
	if q := h.Quantile(0.99); q <= 0.1 || q > 1 {
		t.Fatalf("p99 = %g, want within (0.1, 1]", q)
	}
	if q := h.Quantile(0.5); h.Quantile(0.99) < q {
		t.Fatalf("quantiles not monotone: p50=%g p99=%g", q, h.Quantile(0.99))
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "help.", []float64{0.001, 1})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", q)
	}
	h.Observe(50)  // overflow bucket
	h.Observe(-1)  // clamps into the first bucket
	h.Observe(0)   // first bucket
	h.Observe(0.5) // middle
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	// The overflow bucket reports the last finite bound.
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("overflow p99 = %g, want 1", q)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "Test histogram.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_count 3",
		"test_seconds_sum ",
		"# TYPE test_seconds_p50 gauge",
		"test_seconds_p50 ",
		"test_seconds_p95 ",
		"test_seconds_p99 ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryIncludesPhases(t *testing.T) {
	// The Default-registry phase histograms feed Summary once any job
	// has completed; synthesise one observation per phase.
	QueueWaitSeconds.Observe(0.002)
	SimulateSeconds.Observe(0.2)
	PersistSeconds.Observe(0.0004)
	E2ESeconds.Observe(0.21)
	s := Summary()
	for _, want := range []string{"lat[", "queue p50=", "sim p50=", "persist p50=", "e2e p50="} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary missing %q: %s", want, s)
		}
	}
}
