// Package telemetry provides the process-wide instrumentation layer of
// the simulator: cheap atomic counters and gauges that the engine
// (internal/stochastic), the decision-diagram backend (via
// sim.TableStatser) and the long-running service (cmd/ddsimd) all
// report into, exposed in Prometheus text format.
//
// The package is deliberately dependency-free (standard library only)
// and allocation-free on the hot path: a counter update is one atomic
// add. Metrics register themselves into a Registry at construction;
// the package-level constructors use the Default registry, whose
// contents are served by Handler at /metrics.
//
// Instrument catalogue (all under the ddsim_ / go_ prefixes):
//
//   - simulation throughput: trajectories completed, per-backend wall
//     time and finished jobs;
//   - decision-diagram table activity: unique-table and compute-table
//     lookups/hits (hit rate = hits/lookups), nodes created, peak live
//     nodes, DD garbage collections;
//   - service state: jobs queued/running/done (cmd/ddsimd);
//   - Go runtime: goroutines, GC cycles, heap in use.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metric is anything the registry can render in Prometheus text format.
type metric interface {
	name() string
	write(w io.Writer)
}

// Registry holds an ordered set of metrics and renders them in the
// Prometheus text exposition format (version 0.0.4).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Default is the registry used by the package-level constructors and
// by Handler.
var Default = NewRegistry()

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name()] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name()))
	}
	r.names[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric to w in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		m.write(w)
	}
}

// Handler serves the Default registry in Prometheus text format.
func Handler() http.Handler {
	return Default.handler()
}

func (r *Registry) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	nm, help string
	v        atomic.Int64
}

// NewCounter creates and registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.nm, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// Gauge is an integer metric that can go up and down. SetMax makes it
// usable as a high-water mark.
type Gauge struct {
	nm, help string
	v        atomic.Int64
}

// NewGauge creates and registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v is larger (atomic high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

// FloatGauge is a float-valued gauge (purity, ratios). Set stores the
// float bits atomically.
type FloatGauge struct {
	nm, help string
	bits     atomic.Uint64
}

// NewFloatGauge creates and registers a float gauge in the Default
// registry.
func NewFloatGauge(name, help string) *FloatGauge { return Default.NewFloatGauge(name, help) }

// NewFloatGauge creates and registers a float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) name() string { return g.nm }

func (g *FloatGauge) write(w io.Writer) {
	writeHeader(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
}

// GaugeFunc is a metric whose value is computed at scrape time — used
// for Go runtime statistics. The exposed TYPE is "gauge" for
// NewGaugeFunc and "counter" for NewCounterFunc (monotonic sources
// such as GC cycle counts).
type GaugeFunc struct {
	nm, help, typ string
	f             func() float64
}

// NewGaugeFunc creates and registers a callback gauge in the Default
// registry.
func NewGaugeFunc(name, help string, f func() float64) *GaugeFunc {
	return Default.NewGaugeFunc(name, help, f)
}

// NewGaugeFunc creates and registers a callback gauge.
func (r *Registry) NewGaugeFunc(name, help string, f func() float64) *GaugeFunc {
	g := &GaugeFunc{nm: name, help: help, typ: "gauge", f: f}
	r.register(g)
	return g
}

// NewCounterFunc creates and registers a callback metric exposed with
// counter semantics in the Default registry; f must be monotonic.
func NewCounterFunc(name, help string, f func() float64) *GaugeFunc {
	return Default.NewCounterFunc(name, help, f)
}

// NewCounterFunc creates and registers a callback counter; f must be
// monotonic.
func (r *Registry) NewCounterFunc(name, help string, f func() float64) *GaugeFunc {
	g := &GaugeFunc{nm: name, help: help, typ: "counter", f: f}
	r.register(g)
	return g
}

func (g *GaugeFunc) name() string { return g.nm }

func (g *GaugeFunc) write(w io.Writer) {
	writeHeader(w, g.nm, g.help, g.typ)
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.f()))
}

// FloatCounter is a monotonically increasing float metric (seconds of
// wall time, etc.). Adds are lock-free CAS loops on the float bits.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// CounterVec is a family of counters distinguished by one label value
// (e.g. per-backend totals). Label values are created on first use;
// With is mutex-guarded (cold path) while the returned counter's Add
// is a single atomic (hot path) — callers should cache the child.
type CounterVec struct {
	nm, help, label string
	mu              sync.Mutex
	children        map[string]*Counter
}

// NewCounterVec creates and registers a labelled counter family in the
// Default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.NewCounterVec(name, help, label)
}

// NewCounterVec creates and registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, help: help, label: label, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{nm: v.nm}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) name() string { return v.nm }

func (v *CounterVec) write(w io.Writer) {
	writeHeader(w, v.nm, v.help, "counter")
	for _, value := range v.sortedLabels() {
		v.mu.Lock()
		c := v.children[value]
		v.mu.Unlock()
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.nm, v.label, value, c.Value())
	}
}

func (v *CounterVec) sortedLabels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.children))
	for k := range v.children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FloatCounterVec is CounterVec for float counters (wall-time totals).
type FloatCounterVec struct {
	nm, help, label string
	mu              sync.Mutex
	children        map[string]*FloatCounter
}

// NewFloatCounterVec creates and registers a labelled float-counter
// family in the Default registry.
func NewFloatCounterVec(name, help, label string) *FloatCounterVec {
	return Default.NewFloatCounterVec(name, help, label)
}

// NewFloatCounterVec creates and registers a labelled float-counter
// family.
func (r *Registry) NewFloatCounterVec(name, help, label string) *FloatCounterVec {
	v := &FloatCounterVec{nm: name, help: help, label: label, children: make(map[string]*FloatCounter)}
	r.register(v)
	return v
}

// With returns the float counter for one label value, creating it on
// first use.
func (v *FloatCounterVec) With(value string) *FloatCounter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &FloatCounter{}
		v.children[value] = c
	}
	return c
}

func (v *FloatCounterVec) name() string { return v.nm }

func (v *FloatCounterVec) write(w io.Writer) {
	writeHeader(w, v.nm, v.help, "counter")
	v.mu.Lock()
	labels := make([]string, 0, len(v.children))
	for k := range v.children {
		labels = append(labels, k)
	}
	v.mu.Unlock()
	sort.Strings(labels)
	for _, value := range labels {
		v.mu.Lock()
		c := v.children[value]
		v.mu.Unlock()
		fmt.Fprintf(w, "%s{%s=%q} %s\n", v.nm, v.label, value, formatFloat(c.Value()))
	}
}

// memStatsCached serves all runtime gauges of one scrape from a single
// ReadMemStats call (it stops the world): consecutive readers within
// ttl share the snapshot.
var memStatsCache struct {
	mu    sync.Mutex
	ts    time.Time
	stats runtime.MemStats
}

func memStatsCached() runtime.MemStats {
	const ttl = 100 * time.Millisecond
	memStatsCache.mu.Lock()
	defer memStatsCache.mu.Unlock()
	if time.Since(memStatsCache.ts) > ttl {
		runtime.ReadMemStats(&memStatsCache.stats)
		memStatsCache.ts = time.Now()
	}
	return memStatsCache.stats
}

func init() {
	NewGaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	NewCounterFunc("go_gc_cycles_total", "Completed Go garbage collection cycles.",
		func() float64 { return float64(memStatsCached().NumGC) })
	NewGaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(memStatsCached().HeapAlloc) })
}
