package telemetry

import "fmt"

// Standard simulator instruments, shared by the stochastic engine, the
// CLIs and the ddsimd service. All live in the Default registry.
var (
	// Trajectories counts Monte-Carlo trajectories completed across
	// every simulation in the process.
	Trajectories = NewCounter("ddsim_trajectories_total",
		"Monte-Carlo trajectories completed.")

	// BackendSeconds accumulates per-backend simulation wall time.
	BackendSeconds = NewFloatCounterVec("ddsim_backend_seconds_total",
		"Wall-clock simulation time per backend.", "backend")

	// BackendJobs counts finished simulation jobs per backend.
	BackendJobs = NewCounterVec("ddsim_backend_jobs_total",
		"Simulation jobs finished per backend.", "backend")

	// DDUniqueLookups / DDUniqueHits measure the decision-diagram
	// unique-table (hash-consing) hit rate.
	DDUniqueLookups = NewCounter("ddsim_dd_unique_lookups_total",
		"Decision-diagram unique-table lookups.")
	DDUniqueHits = NewCounter("ddsim_dd_unique_hits_total",
		"Decision-diagram unique-table hits (node already existed).")

	// DDComputeLookups / DDComputeHits measure the combined hit rate of
	// the memoisation caches (add, multiply, norm, probability, ...).
	DDComputeLookups = NewCounter("ddsim_dd_compute_lookups_total",
		"Decision-diagram compute-table lookups.")
	DDComputeHits = NewCounter("ddsim_dd_compute_hits_total",
		"Decision-diagram compute-table hits.")

	// DDComputeConflicts counts compute-cache misses that evicted a
	// resident entry — the conflict-miss rate of the direct-mapped
	// caches (see docs/PERFORMANCE.md "Knob 2c").
	DDComputeConflicts = NewCounter("ddsim_dd_compute_conflicts_total",
		"Decision-diagram compute-table misses that evicted a resident entry.")

	// DDUniqueProbeLen is the unique-table probe-length distribution:
	// cache lines touched per hash-consing lookup (control-word groups
	// in the swiss plane, chain nodes in the chained plane). The last
	// bucket absorbs probes longer than 8. DDUniqueMaxProbe is the
	// longest probe any DD package ever performed in this process;
	// DDUniqueLoadFactor the unique-table load factor of the most
	// recently reported package snapshot.
	DDUniqueProbeLen = NewHistogram("ddsim_dd_unique_probe_len",
		"Unique-table probe length (cache lines touched per lookup).",
		[]float64{1, 2, 3, 4, 5, 6, 7, 8})
	DDUniqueMaxProbe = NewGauge("ddsim_dd_unique_max_probe",
		"Longest unique-table probe observed in any DD package.")
	DDUniqueLoadFactor = NewFloatGauge("ddsim_dd_unique_load_factor",
		"Unique-table load factor of the most recently reported DD package.")

	// DDNodesCreated counts vector nodes ever created, DDGCRuns the
	// number of DD garbage collections, and DDPeakNodes the largest
	// live vector-node population seen in any single DD package.
	DDNodesCreated = NewCounter("ddsim_dd_nodes_created_total",
		"Decision-diagram vector nodes created.")
	DDGCRuns = NewCounter("ddsim_dd_gc_runs_total",
		"Decision-diagram garbage collections.")
	DDPeakNodes = NewGauge("ddsim_dd_peak_nodes",
		"Largest live vector-node population observed in one DD package.")

	// GateApplications counts unitary gate applications executed by
	// simulation workers (trajectories, checkpoint-prefix construction
	// and fidelity reference runs alike).
	GateApplications = NewCounter("ddsim_gate_applications_total",
		"Unitary gate applications executed by simulation workers.")

	// CheckpointsTaken counts checkpoints captured by the trajectory
	// engine, by kind: "prefix" (the shared deterministic prefix of a
	// job, taken once per worker) or "segment" (a multi-level
	// checkpoint after a deterministic run between noise sites).
	CheckpointsTaken = NewCounterVec("ddsim_checkpoints_total",
		"Checkpoints captured by the trajectory engine, by kind.", "kind")

	// CheckpointForks counts state restores served from checkpoints:
	// one per forked trajectory plus one per reused segment.
	CheckpointForks = NewCounter("ddsim_checkpoint_forks_total",
		"Trajectory forks served from checkpoints (state restores).")

	// CheckpointGatesSkipped counts gate applications avoided by
	// forking from checkpoints instead of replaying deterministic ops.
	CheckpointGatesSkipped = NewCounter("ddsim_checkpoint_gates_skipped_total",
		"Gate applications avoided by forking from checkpoints.")

	// CheckpointNodesRetained / CheckpointBytesRetained are high-water
	// marks of the memory pinned by one worker's live checkpoints:
	// decision-diagram nodes (DD backend) and bytes (both backends;
	// dense checkpoints are full amplitude copies).
	CheckpointNodesRetained = NewGauge("ddsim_checkpoint_nodes_retained",
		"Largest decision-diagram node count pinned by one worker's checkpoints.")
	CheckpointBytesRetained = NewGauge("ddsim_checkpoint_bytes_retained",
		"Largest byte footprint retained by one worker's checkpoints.")

	// ExactChannelApplications counts single-qubit error-channel
	// applications (ρ → Σ K ρ K†) executed by the exact density-matrix
	// engine — its work unit, the analogue of GateApplications for
	// sampled noise.
	ExactChannelApplications = NewCounter("ddsim_exact_channel_applications_total",
		"Error-channel applications executed by the exact density-matrix engine.")

	// NoiseChannelApplications counts noise-channel applications by
	// channel kind (depolarizing / damping / phaseflip / twirled /
	// idle / crosstalk): sampled channel draws in the stochastic
	// engine, exact channel applications in the density-matrix engine.
	NoiseChannelApplications = NewCounterVec("ddsim_noise_channel_applications_total",
		"Noise-channel applications, by channel kind.", "kind")

	// ExactBranches is the high-water mark of simultaneously tracked
	// outcome-history branches in one exact-engine job (measurements
	// and classical conditions fork branches; equal classical histories
	// are merged back).
	ExactBranches = NewGauge("ddsim_exact_branches",
		"Largest outcome-history branch count tracked by one exact-engine job.")

	// ExactDDNodes is the high-water mark of density-matrix decision-
	// diagram nodes retained by one exact-engine job (ddensity backend
	// only; the paper's structural-compression measure, squared
	// representation included).
	ExactDDNodes = NewGauge("ddsim_exact_dd_nodes",
		"Largest density-matrix DD node count retained by one exact-engine job.")

	// ExactPurity is tr(ρ²) of the most recently finished exact
	// simulation's final state: 1.0 for pure states, 1/2^n at the fully
	// mixed floor — a live measure of how much decoherence the noise
	// model injects.
	ExactPurity = NewFloatGauge("ddsim_exact_purity",
		"tr(rho^2) of the most recently finished exact simulation.")

	// JobsQueued / JobsRunning / JobsDone track the ddsimd service job
	// lifecycle (done is labelled by terminal status:
	// done / cancelled / failed).
	JobsQueued = NewGauge("ddsim_jobs_queued",
		"Service jobs accepted and waiting for a worker-pool slot.")
	JobsRunning = NewGauge("ddsim_jobs_running",
		"Service jobs currently simulating.")
	JobsDone = NewCounterVec("ddsim_jobs_done_total",
		"Service jobs finished, by terminal status.", "status")

	// JobsRejected counts submissions refused by admission control,
	// labelled by reason: "rate_limit" (per-client token bucket) or
	// "queue_full" (unfinished-job bound); both are answered 429.
	JobsRejected = NewCounterVec("ddsim_jobs_rejected_total",
		"Service submissions refused by admission control, by reason.", "reason")

	// JobsRecovered counts jobs reconstructed from the job store at
	// startup, labelled by outcome: "served" (terminal state replayed
	// from disk), "requeued" (in flight at the crash; re-run) or
	// "failed" (the spec no longer compiles under the current server
	// limits; recorded as permanently failed).
	JobsRecovered = NewCounterVec("ddsim_jobs_recovered_total",
		"Jobs reconstructed from the on-disk store at startup, by outcome.", "outcome")

	// WALAppends counts fsync'd appends to the job store's write-ahead
	// log (one per durable status transition); WALCompactions counts
	// runtime WAL rewrites (wheel-scheduled; one more happens inside
	// every Open).
	WALAppends = NewCounter("ddsim_jobstore_wal_appends_total",
		"Fsync'd write-ahead-log appends in the job store.")
	WALCompactions = NewCounter("ddsim_jobstore_wal_compactions_total",
		"Runtime write-ahead-log compactions in the job store.")

	// ResCacheHits / ResCacheMisses / ResCacheJoins classify result-
	// cache lookups: served from cache, led to a fresh simulation, or
	// deduplicated onto an identical in-flight job.
	ResCacheHits = NewCounter("ddsim_rescache_hits_total",
		"Result-cache lookups served from the cache.")
	ResCacheMisses = NewCounter("ddsim_rescache_misses_total",
		"Result-cache lookups that led a fresh simulation.")
	ResCacheJoins = NewCounter("ddsim_rescache_dedup_joins_total",
		"Result-cache lookups deduplicated onto an in-flight identical job.")

	// ResCacheEvictions counts entries dropped by the cache's LRU
	// bounds; ResCacheEntries / ResCacheBytes are the live population.
	ResCacheEvictions = NewCounter("ddsim_rescache_evictions_total",
		"Result-cache entries evicted by the LRU bounds.")
	ResCacheEntries = NewGauge("ddsim_rescache_entries",
		"Result-cache entries currently held.")
	ResCacheBytes = NewGauge("ddsim_rescache_bytes",
		"Total payload bytes currently held by the result cache.")

	// ResCacheTTLEvictions counts entries dropped by the cache's
	// age bound (wheel-scheduled sweeps plus lazy expiry on lookup),
	// as opposed to the LRU capacity bounds counted above.
	ResCacheTTLEvictions = NewCounter("ddsim_rescache_ttl_evictions_total",
		"Result-cache entries evicted because they outlived the TTL.")

	// QueueWaitSeconds / SimulateSeconds / PersistSeconds are the
	// per-phase latency histograms of the ddsimd job pipeline: time
	// from acceptance to a granted simulation slot, time simulating,
	// and time writing the terminal state to the job store.
	// E2ESeconds is the whole journey, acceptance to terminal state
	// (cache hits included, which is why it can undercut the sum of
	// the phases). All share one log-spaced ladder from 10µs to 100s;
	// p50/p95/p99 gauges are derived at scrape time.
	QueueWaitSeconds = NewHistogram("ddsim_queue_wait_seconds",
		"Time from job acceptance to a granted simulation slot.",
		LogBuckets(1e-5, 100, 5))
	SimulateSeconds = NewHistogram("ddsim_simulate_seconds",
		"Time simulating one job (all its noise points).",
		LogBuckets(1e-5, 100, 5))
	PersistSeconds = NewHistogram("ddsim_persist_seconds",
		"Time persisting one job's terminal state to the job store.",
		LogBuckets(1e-5, 100, 5))
	E2ESeconds = NewHistogram("ddsim_e2e_seconds",
		"Time from job acceptance to its terminal state.",
		LogBuckets(1e-5, 100, 5))

	// DispatchWaiting / DispatchGranted mirror the lock-free dispatch
	// plane: tickets queued for a simulation slot (ring + priority
	// heap) and slots granted since start. Snapshots are refreshed by
	// a wheel-scheduled task in ddsimd, not at scrape time.
	DispatchWaiting = NewGauge("ddsim_dispatch_waiting",
		"Submissions queued in the dispatch plane for a simulation slot.")
	DispatchGranted = NewGauge("ddsim_dispatch_granted",
		"Simulation slots granted by the dispatch plane since start.")

	// Timing-wheel activity: live timers, callbacks fired, timers
	// cancelled before firing, and inter-level cascades. One wheel
	// serves every schedule in the process (SSE keepalives, rate
	// refills, TTL sweeps, compaction), so WheelTimers is the whole
	// timer population — O(1) in connected clients by design.
	WheelTimers = NewGauge("ddsim_timewheel_timers",
		"Timers currently scheduled on the service timing wheel.")
	WheelFired = NewGauge("ddsim_timewheel_fired",
		"Timing-wheel callbacks fired since start (snapshot).")
	WheelCancelled = NewGauge("ddsim_timewheel_cancelled",
		"Timing-wheel timers cancelled before firing (snapshot).")
	WheelCascades = NewGauge("ddsim_timewheel_cascades",
		"Timing-wheel slot promotions between levels (snapshot).")

	// SSEKeepalives counts keepalive comments written to idle SSE
	// streams by the wheel schedule.
	SSEKeepalives = NewCounter("ddsim_sse_keepalives_total",
		"Keepalive comments written to idle SSE event streams.")

	// RateBucketsEvicted counts per-client token buckets evicted by
	// the wheel-scheduled idle sweep; RateBuckets is the live count.
	RateBucketsEvicted = NewCounter("ddsim_rate_buckets_evicted_total",
		"Idle per-client rate-limit buckets evicted by the wheel sweep.")
	RateBuckets = NewGauge("ddsim_rate_buckets",
		"Per-client rate-limit buckets currently tracked.")
)

// hitRate returns hits/lookups as a percentage, or 0 when idle.
func hitRate(hits, lookups *Counter) float64 {
	l := lookups.Value()
	if l == 0 {
		return 0
	}
	return 100 * float64(hits.Value()) / float64(l)
}

// Summary formats a compact one-line digest of the simulation counters
// for CLI footers (sqcsim -progress, benchtab).
func Summary() string {
	applied := GateApplications.Value()
	skipped := CheckpointGatesSkipped.Value()
	skipPct := 0.0
	if applied+skipped > 0 {
		skipPct = 100 * float64(skipped) / float64(applied+skipped)
	}
	s := fmt.Sprintf(
		"trajectories=%d gates[applied=%d skipped=%.1f%%] ckpt[forks=%d] dd[created=%d peak=%d gc=%d unique-hit=%.1f%% compute-hit=%.1f%%]",
		Trajectories.Value(), applied, skipPct, CheckpointForks.Value(),
		DDNodesCreated.Value(), DDPeakNodes.Value(), DDGCRuns.Value(),
		hitRate(DDUniqueHits, DDUniqueLookups),
		hitRate(DDComputeHits, DDComputeLookups))
	if ch := ExactChannelApplications.Value(); ch > 0 {
		s += fmt.Sprintf(" exact[channels=%d branches=%d purity=%.4f]",
			ch, ExactBranches.Value(), ExactPurity.Value())
	}
	if E2ESeconds.Count() > 0 {
		s += " " + phaseDigest()
	}
	return s
}

// phaseDigest formats the per-phase latency percentiles for Summary:
// p50/p95/p99 per pipeline phase, phases with no observations omitted.
func phaseDigest() string {
	quantiles := func(h *Histogram) string {
		return fmt.Sprintf("p50=%s p95=%s p99=%s",
			fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.95)), fmtSeconds(h.Quantile(0.99)))
	}
	s := "lat["
	first := true
	for _, ph := range [...]struct {
		label string
		h     *Histogram
	}{
		{"queue", QueueWaitSeconds},
		{"sim", SimulateSeconds},
		{"persist", PersistSeconds},
		{"e2e", E2ESeconds},
	} {
		if ph.h.Count() == 0 {
			continue
		}
		if !first {
			s += " | "
		}
		first = false
		s += ph.label + " " + quantiles(ph.h)
	}
	return s + "]"
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.0fµs", v*1e6)
	}
}
