package telemetry

import "fmt"

// Standard simulator instruments, shared by the stochastic engine, the
// CLIs and the ddsimd service. All live in the Default registry.
var (
	// Trajectories counts Monte-Carlo trajectories completed across
	// every simulation in the process.
	Trajectories = NewCounter("ddsim_trajectories_total",
		"Monte-Carlo trajectories completed.")

	// BackendSeconds accumulates per-backend simulation wall time.
	BackendSeconds = NewFloatCounterVec("ddsim_backend_seconds_total",
		"Wall-clock simulation time per backend.", "backend")

	// BackendJobs counts finished simulation jobs per backend.
	BackendJobs = NewCounterVec("ddsim_backend_jobs_total",
		"Simulation jobs finished per backend.", "backend")

	// DDUniqueLookups / DDUniqueHits measure the decision-diagram
	// unique-table (hash-consing) hit rate.
	DDUniqueLookups = NewCounter("ddsim_dd_unique_lookups_total",
		"Decision-diagram unique-table lookups.")
	DDUniqueHits = NewCounter("ddsim_dd_unique_hits_total",
		"Decision-diagram unique-table hits (node already existed).")

	// DDComputeLookups / DDComputeHits measure the combined hit rate of
	// the memoisation caches (add, multiply, norm, probability, ...).
	DDComputeLookups = NewCounter("ddsim_dd_compute_lookups_total",
		"Decision-diagram compute-table lookups.")
	DDComputeHits = NewCounter("ddsim_dd_compute_hits_total",
		"Decision-diagram compute-table hits.")

	// DDNodesCreated counts vector nodes ever created, DDGCRuns the
	// number of DD garbage collections, and DDPeakNodes the largest
	// live vector-node population seen in any single DD package.
	DDNodesCreated = NewCounter("ddsim_dd_nodes_created_total",
		"Decision-diagram vector nodes created.")
	DDGCRuns = NewCounter("ddsim_dd_gc_runs_total",
		"Decision-diagram garbage collections.")
	DDPeakNodes = NewGauge("ddsim_dd_peak_nodes",
		"Largest live vector-node population observed in one DD package.")

	// GateApplications counts unitary gate applications executed by
	// simulation workers (trajectories, checkpoint-prefix construction
	// and fidelity reference runs alike).
	GateApplications = NewCounter("ddsim_gate_applications_total",
		"Unitary gate applications executed by simulation workers.")

	// CheckpointsTaken counts checkpoints captured by the trajectory
	// engine, by kind: "prefix" (the shared deterministic prefix of a
	// job, taken once per worker) or "segment" (a multi-level
	// checkpoint after a deterministic run between noise sites).
	CheckpointsTaken = NewCounterVec("ddsim_checkpoints_total",
		"Checkpoints captured by the trajectory engine, by kind.", "kind")

	// CheckpointForks counts state restores served from checkpoints:
	// one per forked trajectory plus one per reused segment.
	CheckpointForks = NewCounter("ddsim_checkpoint_forks_total",
		"Trajectory forks served from checkpoints (state restores).")

	// CheckpointGatesSkipped counts gate applications avoided by
	// forking from checkpoints instead of replaying deterministic ops.
	CheckpointGatesSkipped = NewCounter("ddsim_checkpoint_gates_skipped_total",
		"Gate applications avoided by forking from checkpoints.")

	// CheckpointNodesRetained / CheckpointBytesRetained are high-water
	// marks of the memory pinned by one worker's live checkpoints:
	// decision-diagram nodes (DD backend) and bytes (both backends;
	// dense checkpoints are full amplitude copies).
	CheckpointNodesRetained = NewGauge("ddsim_checkpoint_nodes_retained",
		"Largest decision-diagram node count pinned by one worker's checkpoints.")
	CheckpointBytesRetained = NewGauge("ddsim_checkpoint_bytes_retained",
		"Largest byte footprint retained by one worker's checkpoints.")

	// JobsQueued / JobsRunning / JobsDone track the ddsimd service job
	// lifecycle (done is labelled by terminal status:
	// done / cancelled / failed).
	JobsQueued = NewGauge("ddsim_jobs_queued",
		"Service jobs accepted and waiting for a worker-pool slot.")
	JobsRunning = NewGauge("ddsim_jobs_running",
		"Service jobs currently simulating.")
	JobsDone = NewCounterVec("ddsim_jobs_done_total",
		"Service jobs finished, by terminal status.", "status")
)

// hitRate returns hits/lookups as a percentage, or 0 when idle.
func hitRate(hits, lookups *Counter) float64 {
	l := lookups.Value()
	if l == 0 {
		return 0
	}
	return 100 * float64(hits.Value()) / float64(l)
}

// Summary formats a compact one-line digest of the simulation counters
// for CLI footers (sqcsim -progress, benchtab).
func Summary() string {
	applied := GateApplications.Value()
	skipped := CheckpointGatesSkipped.Value()
	skipPct := 0.0
	if applied+skipped > 0 {
		skipPct = 100 * float64(skipped) / float64(applied+skipped)
	}
	return fmt.Sprintf(
		"trajectories=%d gates[applied=%d skipped=%.1f%%] ckpt[forks=%d] dd[created=%d peak=%d gc=%d unique-hit=%.1f%% compute-hit=%.1f%%]",
		Trajectories.Value(), applied, skipPct, CheckpointForks.Value(),
		DDNodesCreated.Value(), DDPeakNodes.Value(), DDGCRuns.Value(),
		hitRate(DDUniqueHits, DDUniqueLookups),
		hitRate(DDComputeHits, DDComputeLookups))
}
