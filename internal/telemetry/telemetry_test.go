package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A test counter.")
	g := r.NewGauge("test_gauge", "A test gauge.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Dec()
	g.Add(2)
	if g.Value() != 8 {
		t.Fatalf("gauge = %d, want 8", g.Value())
	}
	g.SetMax(3) // lower: no effect
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("gauge after SetMax = %d, want 11", g.Value())
	}
}

func TestVecAndFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	v := r.NewCounterVec("by_backend_total", "Per backend.", "backend")
	f := r.NewFloatCounterVec("seconds_total", "Seconds.", "backend")
	r.NewGaugeFunc("fn_gauge", "Callback.", func() float64 { return 2.5 })
	c.Add(3)
	v.With("dd").Add(2)
	v.With("statevec").Inc()
	f.With("dd").Add(1.25)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE by_backend_total counter\n",
		"by_backend_total{backend=\"dd\"} 2\n",
		"by_backend_total{backend=\"statevec\"} 1\n",
		"seconds_total{backend=\"dd\"} 1.25\n",
		"# TYPE fn_gauge gauge\nfn_gauge 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	var c FloatCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("float counter = %v, want 4000", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.NewCounter("dup_total", "x")
}

func TestHandlerServesDefaultRegistry(t *testing.T) {
	Trajectories.Add(1)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"ddsim_trajectories_total", "go_goroutines", "ddsim_dd_unique_lookups_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestSummaryMentionsCoreCounters(t *testing.T) {
	s := Summary()
	for _, want := range []string{"trajectories=", "unique-hit=", "compute-hit=", "gc="} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary() = %q missing %q", s, want)
		}
	}
}
