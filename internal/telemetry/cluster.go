package telemetry

// Distributed-coordinator instruments (internal/cluster). All live in
// the Default registry.
var (
	// ClusterLeasesGranted counts leases granted by coordinators,
	// including reclaim grants after expiry.
	ClusterLeasesGranted = NewCounter("ddsim_cluster_leases_granted_total",
		"Chunk-range leases granted by the coordinator.")

	// ClusterLeaseRenewals counts successful heartbeat renewals.
	ClusterLeaseRenewals = NewCounter("ddsim_cluster_lease_renewals_total",
		"Lease deadline extensions from successful heartbeats.")

	// ClusterLeasesExpired counts leases that passed their deadline
	// and were reclaimed, and ClusterReassignments the resulting
	// re-grants of the same part (currently 1:1 with expiries; kept
	// separate so voluntary-release reassignment can diverge).
	ClusterLeasesExpired = NewCounter("ddsim_cluster_leases_expired_total",
		"Leases reclaimed after missing their heartbeat deadline.")
	ClusterReassignments = NewCounter("ddsim_cluster_reassignments_total",
		"Parts re-leased to another worker after a lease was lost.")

	// ClusterStaleCompletions counts completions rejected by the
	// fencing token — deliveries from a worker whose lease was
	// reassigned (or whose part already completed).
	ClusterStaleCompletions = NewCounter("ddsim_cluster_stale_completions_total",
		"Chunk completions rejected by lease fencing.")

	// ClusterWorkerFailures counts worker RPC failures seen by
	// coordinator drivers (connection refused, non-2xx, bad body).
	ClusterWorkerFailures = NewCounter("ddsim_cluster_worker_failures_total",
		"Failed coordinator-to-worker RPCs.")

	// ClusterPartsCompleted counts parts accepted by the lease table
	// exactly once each.
	ClusterPartsCompleted = NewCounter("ddsim_cluster_parts_completed_total",
		"Chunk-range parts accepted by the coordinator.")

	// ClusterChunksComputed counts chunks computed in worker mode.
	ClusterChunksComputed = NewCounter("ddsim_cluster_chunks_computed_total",
		"Trajectory chunks computed by this process in worker mode.")

	// ClusterWorkerRequests counts worker-side requests by phase
	// (endpoint): lease, heartbeat, complete.
	ClusterWorkerRequests = NewCounterVec("ddsim_cluster_worker_requests_total",
		"Worker-mode requests served, by endpoint.", "endpoint")

	// ClusterLeaseSeconds distributes the grant-to-completion time of
	// accepted leases.
	ClusterLeaseSeconds = NewHistogram("ddsim_cluster_lease_seconds",
		"Grant-to-completion time of accepted leases.",
		LogBuckets(1e-3, 1e3, 5))
)
