package telemetry

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram: log-spaced upper
// bounds, one atomic counter per bucket, plus an exact sum and count.
// Observe is lock-free (one atomic add after a binary search over a
// ~40-entry bound slice), so it is safe on the service's per-request
// hot path.
//
// The Prometheus exposition renders the standard cumulative
// <name>_bucket{le="..."} series plus <name>_sum and <name>_count;
// p50/p95/p99 are additionally exported as <name>_p50 / _p95 / _p99
// gauges (log-interpolated within the owning bucket) so operators and
// the load harness can read percentiles without a PromQL engine.
type Histogram struct {
	nm, help string
	bounds   []float64 // ascending upper bounds; +Inf is implicit
	counts   []atomic.Int64
	sum      FloatCounter
	count    atomic.Int64
}

// LogBuckets returns log-spaced bucket upper bounds from min to at
// least max with the given number of buckets per decade. It is the
// standard bucket layout for the service's latency histograms:
// LogBuckets(1e-5, 100, 5) spans 10µs–100s in 36 buckets.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic("telemetry: invalid LogBuckets parameters")
	}
	var out []float64
	for i := 0; ; i++ {
		// Derive every bound from the decade directly so float error
		// does not accumulate across a long ladder.
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// NewHistogram creates and registers a histogram with the given
// bucket upper bounds in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// NewHistogram creates and registers a histogram with the given
// bucket upper bounds (ascending).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{nm: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(h)
	return h
}

// Observe records one value (negative values clamp to the first
// bucket, like zero).
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records n observations of the same value in one shot —
// the bulk form consumers use to merge pre-bucketed histograms (the
// DD probe-length counts arrive as per-length totals, not one call
// per probe). n ≤ 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	h.counts[h.bucketFor(v)].Add(n)
	h.sum.Add(v * float64(n))
	h.count.Add(n)
}

// bucketFor finds the first bound ≥ v by binary search; the last
// index is the +Inf overflow bucket.
func (h *Histogram) bucketFor(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts, log-interpolating within the owning bucket (matching the
// log-spaced layout; the overflow bucket reports its lower bound).
// It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := 0, len(h.counts); i < n; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == n-1 { // overflow bucket: no upper bound to interpolate to
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			lo := hi / 10 // sensible floor for the first bucket
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo * math.Pow(hi/lo, frac)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) write(w io.Writer) {
	writeHeader(w, h.nm, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.Count())
	for _, p := range [...]struct {
		suffix string
		q      float64
	}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}} {
		name := h.nm + "_" + p.suffix
		writeHeader(w, name, fmt.Sprintf("Estimated %s quantile of %s.", p.suffix, h.nm), "gauge")
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(h.Quantile(p.q)))
	}
}
