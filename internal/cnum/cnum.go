// Package cnum provides a tolerance-based interning table for complex
// numbers, following the approach of Zulehner, Hillmich and Wille,
// "How to efficiently handle complex values? Implementing decision
// diagrams for quantum computing" (ICCAD 2019) — reference [39] of the
// reproduced paper.
//
// Decision diagram canonicity requires that two edge weights that are
// "numerically the same" are represented by the *same* object, so that
// node equality reduces to pointer comparisons in the unique table.
// A Table interns float pairs with a fixed tolerance: looking up a
// value that is within Tolerance (per component) of a previously
// stored value returns the stored representative.
//
// Like the C++ package the paper builds on, the table is a custom
// hash table over tolerance-grid cells (not a Go map): weight
// interning sits on the innermost simulation loop, and the home-cell
// fast path plus cheap integer hashing are what keep it off the
// profile. Two lookup planes implement the same cell semantics: the
// default open-addressing swiss table (internal/swiss) and the
// original chained-bucket table, kept behind DDSIM_DD_TABLES=chained.
// Both resolve tolerance ties identically — cells are scanned in the
// same order and hold their values newest first — so the differential
// suites can demand bit-identical simulation results across planes.
package cnum

import (
	"fmt"
	"math"
	"os"
	"sync"
)

// Tolerance is the default per-component distance below which two
// complex values are identified. It matches the default of the JKU DD
// package. Tables can be built with a different tolerance
// (NewTableTol) — the exact density-matrix engine interns with a much
// tighter one so deterministic results hold to ~1e-12.
const Tolerance = 1e-10

// Value is an interned complex number. Within one Table, pointer
// equality of *Value implies numerical equality (up to Tolerance), so
// decision diagram code compares weights by pointer only.
type Value struct {
	re, im float64
	id     uint32 // table-unique, used for cheap hashing downstream
	pins   int32  // root-weight pin count (see Pin/Unpin)
	marked bool   // mark-and-sweep flag (see BeginMark/Mark/Sweep)
	next   *Value // hash-bucket chain, or free-list chain once recycled
}

// Re returns the real part of the value.
func (v *Value) Re() float64 { return v.re }

// Im returns the imaginary part of the value.
func (v *Value) Im() float64 { return v.im }

// ID returns the table-unique identifier of the value (non-zero).
// Decision-diagram hash tables mix these instead of hashing floats.
func (v *Value) ID() uint32 { return v.id }

// Complex returns the value as a complex128.
func (v *Value) Complex() complex128 { return complex(v.re, v.im) }

// Mag2 returns the squared magnitude |v|².
func (v *Value) Mag2() float64 { return v.re*v.re + v.im*v.im }

// String formats the value for diagnostics and DOT export.
func (v *Value) String() string {
	switch {
	case v.im == 0:
		return trimFloat(v.re)
	case v.re == 0:
		return trimFloat(v.im) + "i"
	case v.im < 0:
		return trimFloat(v.re) + trimFloat(v.im) + "i"
	default:
		return trimFloat(v.re) + "+" + trimFloat(v.im) + "i"
	}
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%.6g", f)
}

// Table interns complex values. The zero Table is not ready for use;
// create one with NewTable. Tables are not safe for concurrent use;
// the simulator gives every worker its own table (and DD package).
type Table struct {
	// Exactly one lookup plane is active, chosen at construction from
	// DDSIM_DD_TABLES (see SwissTables): the open-addressing cell
	// table (cells) or the legacy chained buckets.
	swissOn bool
	cells   cellTable
	buckets []*Value

	count  int
	nextID uint32

	// Arena storage (see ArenaEnabled): values live in append-only
	// slabs whose backing arrays never move, and Sweep recycles dead
	// values through the free list instead of dropping them to the Go
	// collector. A recycled slot keeps its id, so live IDs stay dense.
	slabs   [][]Value
	free    *Value
	recycle bool

	released bool

	// tol is the per-component identification distance; cell is the
	// side of one hash-grid cell (4·tol, see neighborDir).
	tol, cell float64

	// Zero and One are the canonical representatives of 0 and 1.
	// They are pre-interned so hot paths can compare against them.
	Zero *Value
	One  *Value

	lookups int
	hits    int
}

// NewTable returns an empty table with 0 and 1 pre-interned, using
// the default Tolerance.
func NewTable() *Table { return NewTableTol(Tolerance) }

// NewTableTol returns an empty table identifying values within tol
// per component. tol must be positive and far above float64 epsilon;
// the exact engine uses a tight tolerance so that deterministic
// density-matrix results carry no visible interning error, while the
// stochastic engine keeps the JKU default for maximal node sharing.
func NewTableTol(tol float64) *Table {
	return newTableTolOpts(tol, SwissTables(), ArenaEnabled())
}

// newTableTolOpts is the injectable constructor behind NewTableTol:
// the differential tests and FuzzInternTol build both lookup planes
// side by side regardless of the process environment.
func newTableTolOpts(tol float64, swissOn, recycle bool) *Table {
	if tol <= 0 {
		panic("cnum: tolerance must be positive")
	}
	t := &Table{nextID: 1, tol: tol, cell: 4 * tol,
		swissOn: swissOn, recycle: recycle}
	if swissOn {
		if recycle {
			t.cells = getCellTable()
		} else {
			t.cells = newCellTable(minCellGroups)
		}
	} else {
		t.buckets = make([]*Value, 1<<12)
	}
	t.Zero = t.Lookup(0, 0)
	t.One = t.Lookup(1, 0)
	return t
}

// SwissTables reports whether the open-addressing swiss-table lookup
// plane is active for the DD kernel (this package's weight-interning
// cell table and internal/dd's unique tables). It is on unless the
// DDSIM_DD_TABLES environment variable is set to "chained" — the
// escape hatch that keeps the legacy chained tables differentially
// testable forever, read once at Table/Package construction exactly
// like DDSIM_DD_ARENA.
func SwissTables() bool { return os.Getenv("DDSIM_DD_TABLES") != "chained" }

// ArenaEnabled reports whether the value arena (slab allocation, free-
// list recycling on Sweep, slab pooling on Release) is active. It is on
// unless the DDSIM_DD_ARENA environment variable is set to "off" — the
// escape hatch the differential tests use to compare arena-on and
// arena-off results bit for bit.
func ArenaEnabled() bool { return os.Getenv("DDSIM_DD_ARENA") != "off" }

// valueSlabSize is the number of values per arena slab. Slabs are
// append-only (the backing array never moves, so interior pointers
// stay valid) and are returned to a process-wide pool by Release.
const valueSlabSize = 2048

var valueSlabPool = sync.Pool{
	New: func() interface{} {
		s := make([]Value, 0, valueSlabSize)
		return &s
	},
}

// newValue materialises one interned value: from the free list (the
// slot keeps its id — live IDs stay unique because a value is only
// recycled after Sweep removed it from every bucket chain), from the
// current slab, or — with the arena disabled — from the Go heap.
func (t *Table) newValue(re, im float64) *Value {
	if v := t.free; v != nil {
		t.free = v.next
		v.re, v.im = re, im
		v.next = nil
		v.marked = false
		return v
	}
	if !t.recycle {
		v := &Value{re: re, im: im, id: t.nextID}
		t.nextID++
		return v
	}
	if len(t.slabs) == 0 || len(t.slabs[len(t.slabs)-1]) == valueSlabSize {
		t.slabs = append(t.slabs, (*valueSlabPool.Get().(*[]Value))[:0])
	}
	s := &t.slabs[len(t.slabs)-1]
	*s = append(*s, Value{re: re, im: im, id: t.nextID})
	t.nextID++
	return &(*s)[len(*s)-1]
}

// Pin marks v as a root weight: a weight held outside the diagram
// structure (the DD package pins the weight of every Ref'd root edge).
// Pinned values survive Sweep even when no live node stores them —
// necessary since Sweep recycles storage when the arena is enabled, so
// "swept but still usable as a number" no longer holds. Pins nest;
// nil is ignored.
func (t *Table) Pin(v *Value) {
	if v != nil {
		v.pins++
	}
}

// Unpin releases a pin taken with Pin.
func (t *Table) Unpin(v *Value) {
	if v == nil {
		return
	}
	if v.pins <= 0 {
		panic("cnum: Unpin of unpinned value")
	}
	v.pins--
}

// Release returns the table's arena slabs to the process-wide pool for
// reuse by future tables. The table must not be used afterwards, and no
// *Value obtained from it may be dereferenced again. No-op when the
// arena is disabled (heap values are left to the Go collector).
func (t *Table) Release() {
	if !t.recycle || t.released {
		return
	}
	t.released = true
	for i := range t.slabs {
		s := t.slabs[i][:cap(t.slabs[i])]
		clear(s) // drop chain pointers so pooled slabs retain nothing
		s = s[:0]
		valueSlabPool.Put(&s)
	}
	t.slabs, t.free, t.buckets = nil, nil, nil
	if t.swissOn {
		putCellTable(&t.cells)
	}
	t.cells = cellTable{}
	t.Zero, t.One = nil, nil
}

// Count returns the number of distinct interned values.
func (t *Table) Count() int { return t.count }

// HitRate returns the fraction of lookups answered from the table.
// It is exposed for tests and diagnostics.
func (t *Table) HitRate() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.lookups)
}

// The hash-grid cell side is 4·tol so that a match for x can only
// live in x's own cell or — when x lies within tol of a cell boundary
// — the directly adjacent cell on that side. This keeps the common
// case at a single probe instead of nine.

func (t *Table) quantize(x float64) int64 {
	return int64(math.Floor(x / t.cell))
}

func (t *Table) closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= t.tol
}

// neighborDir reports which neighbour cells along one axis could hold
// a match for x: −1, +1 or 0 (none) depending on x's offset inside
// its cell.
func (t *Table) neighborDir(x float64, q int64) int64 {
	off := x - float64(q)*t.cell
	if off <= t.tol {
		return -1
	}
	if off >= t.cell-t.tol {
		return 1
	}
	return 0
}

func cellHash(qr, qi int64) uint64 {
	h := uint64(qr)*0x9E3779B97F4A7C15 ^ uint64(qi)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func (t *Table) bucketIndex(qr, qi int64) uint64 {
	return cellHash(qr, qi) & uint64(len(t.buckets)-1)
}

// findInCell scans one grid cell's chain for a match. Chains mix
// values from all cells hashing to the bucket, so the cell is
// re-derived from each candidate's coordinates and only true members
// of the probed cell are considered — the swiss cell table probes
// exactly one cell at a time, and the two implementations must resolve
// tolerance ties identically for the differential suites to hold.
func (t *Table) findInCell(qr, qi int64, re, im float64) *Value {
	for v := t.buckets[t.bucketIndex(qr, qi)]; v != nil; v = v.next {
		if t.quantize(v.re) == qr && t.quantize(v.im) == qi &&
			t.closeEnough(v.re, re) && t.closeEnough(v.im, im) {
			return v
		}
	}
	return nil
}

// Lookup interns the complex number re+im·i and returns its canonical
// representative. Values within Tolerance of 0 (per component) are
// snapped to exactly 0 so that zero edges are structurally exact;
// likewise values within Tolerance of ±1 and ±1/√2 are snapped,
// keeping gate matrices built from exact constants canonical.
func (t *Table) Lookup(re, im float64) *Value {
	if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
		panic(fmt.Sprintf("cnum: non-finite value %g%+gi interned", re, im))
	}
	re = t.snap(re)
	im = t.snap(im)
	t.lookups++

	qr, qi := t.quantize(re), t.quantize(im)
	if t.swissOn {
		return t.lookupSwiss(qr, qi, re, im)
	}
	// Fast path: the home cell (repeat lookups of the same value).
	if v := t.findInCell(qr, qi, re, im); v != nil {
		t.hits++
		return v
	}
	// A match can sit across a grid boundary only when the value lies
	// within Tolerance of that boundary.
	nr := t.neighborDir(re, qr)
	ni := t.neighborDir(im, qi)
	if nr != 0 {
		if v := t.findInCell(qr+nr, qi, re, im); v != nil {
			t.hits++
			return v
		}
	}
	if ni != 0 {
		if v := t.findInCell(qr, qi+ni, re, im); v != nil {
			t.hits++
			return v
		}
	}
	if nr != 0 && ni != 0 {
		if v := t.findInCell(qr+nr, qi+ni, re, im); v != nil {
			t.hits++
			return v
		}
	}

	if t.count >= len(t.buckets)*2 {
		t.grow()
	}
	v := t.newValue(re, im)
	idx := t.bucketIndex(qr, qi)
	v.next = t.buckets[idx]
	t.buckets[idx] = v
	t.count++
	return v
}

// grow doubles the bucket array and rehashes every value into the
// bucket of its own grid cell. Chains are rebuilt order-preserving
// (tail append, not head prepend): within-cell order is the tie
// breaker of tolerance matching, and both lookup planes maintain it as
// newest-value-first so their results stay bit-identical.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*Value, len(old)*2)
	for i, chain := range old {
		// Doubling splits bucket i into buckets i and i+len(old).
		var lo, hi *Value
		loTail, hiTail := &lo, &hi
		for v := chain; v != nil; {
			next := v.next
			v.next = nil
			if t.bucketIndex(t.quantize(v.re), t.quantize(v.im)) == uint64(i) {
				*loTail = v
				loTail = &v.next
			} else {
				*hiTail = v
				hiTail = &v.next
			}
			v = next
		}
		t.buckets[i] = lo
		t.buckets[i+len(old)] = hi
	}
}

// BeginMark clears all mark bits in preparation for a sweep.
func (t *Table) BeginMark() {
	if t.swissOn {
		t.forEachValueSwiss(func(v *Value) { v.marked = false })
		return
	}
	for _, chain := range t.buckets {
		for v := chain; v != nil; v = v.next {
			v.marked = false
		}
	}
}

// Mark pins one value against the next Sweep. Nil is ignored.
func (t *Table) Mark(v *Value) {
	if v != nil {
		v.marked = true
	}
}

// Sweep removes every unmarked, unpinned value except the canonical
// Zero and One, returning the number of values dropped. Callers (the
// DD package's garbage collector) must have Marked every value that is
// still referenced *structurally* — i.e. every edge weight stored in a
// live node — and Pinned every root weight held outside the structure
// (the DD package does this inside Ref/RefM). With the arena enabled a
// swept value's storage is recycled by a later Lookup, so dereferencing
// it afterwards is a use-after-free; the freed slot is poisoned with
// NaNs so such a bug surfaces as a loud non-finite-value panic instead
// of silent corruption.
func (t *Table) Sweep() int {
	if t.swissOn {
		return t.sweepSwiss()
	}
	dropped := 0
	for i, chain := range t.buckets {
		// Survivors are re-linked order-preserving (see grow).
		var keep *Value
		tail := &keep
		for v := chain; v != nil; {
			next := v.next
			if v.marked || v.pins > 0 || v == t.Zero || v == t.One {
				*tail = v
				v.next = nil
				tail = &v.next
			} else {
				dropped++
				t.count--
				t.retire(v)
			}
			v = next
		}
		t.buckets[i] = keep
	}
	return dropped
}

// retire disposes one swept value: with the arena enabled the slot is
// NaN-poisoned and pushed on the free list for recycling; without it
// the value is simply dropped to the Go collector.
func (t *Table) retire(v *Value) {
	if t.recycle {
		v.re, v.im = math.NaN(), math.NaN()
		v.next = t.free
		t.free = v
	}
}

// snap collapses values numerically indistinguishable from the exact
// constants 0, ±1 and ±1/√2 to those constants. This keeps the weights
// produced by H/CX/QFT circuits exactly canonical over long gate
// sequences.
func (t *Table) snap(x float64) float64 {
	switch {
	case math.Abs(x) <= t.tol:
		return 0
	case math.Abs(x-1) <= t.tol:
		return 1
	case math.Abs(x+1) <= t.tol:
		return -1
	case math.Abs(x-math.Sqrt2/2) <= t.tol:
		return math.Sqrt2 / 2
	case math.Abs(x+math.Sqrt2/2) <= t.tol:
		return -math.Sqrt2 / 2
	default:
		return x
	}
}

// LookupC interns a complex128.
func (t *Table) LookupC(c complex128) *Value {
	return t.Lookup(real(c), imag(c))
}

// Mul returns the interned product a·b.
func (t *Table) Mul(a, b *Value) *Value {
	if a == t.Zero || b == t.Zero {
		return t.Zero
	}
	if a == t.One {
		return b
	}
	if b == t.One {
		return a
	}
	return t.LookupC(a.Complex() * b.Complex())
}

// Div returns the interned quotient a/b. b must be non-zero.
func (t *Table) Div(a, b *Value) *Value {
	if b == t.Zero {
		panic("cnum: division by zero weight")
	}
	if a == t.Zero {
		return t.Zero
	}
	if b == t.One {
		return a
	}
	if a == b {
		return t.One
	}
	return t.LookupC(a.Complex() / b.Complex())
}

// Add returns the interned sum a+b.
func (t *Table) Add(a, b *Value) *Value {
	if a == t.Zero {
		return b
	}
	if b == t.Zero {
		return a
	}
	return t.LookupC(a.Complex() + b.Complex())
}

// Neg returns the interned negation −a.
func (t *Table) Neg(a *Value) *Value {
	if a == t.Zero {
		return a
	}
	return t.Lookup(-a.re, -a.im)
}

// Conj returns the interned complex conjugate of a.
func (t *Table) Conj(a *Value) *Value {
	if a.im == 0 {
		return a
	}
	return t.Lookup(a.re, -a.im)
}

// ApproxEqual reports whether two float pairs are within the default
// Tolerance of each other per component — the comparison a
// default-tolerance table uses.
func ApproxEqual(a, b complex128) bool {
	return math.Abs(real(a)-real(b)) <= Tolerance && math.Abs(imag(a)-imag(b)) <= Tolerance
}
