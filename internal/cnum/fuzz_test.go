package cnum

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzInternTol feeds one lookup sequence to both lookup planes (swiss
// and chained) and demands bit-identical representatives. For every
// fuzzed value it also probes boundary-straddling derivatives — ±tol/2
// (must alias), ±2·tol (must not), ±(cell−tol/2) (adjacent grid cell,
// reachable only through the neighbour probe) — which is exactly where
// a semantic divergence between the planes would hide. Periodic
// identical mark/sweep rounds exercise chain filtering and the
// tombstone-free rebuild mid-sequence.
//
// The seed corpus covers the near-underflow scales of
// zeroweight_test.go (1e-4 … 1e-6 amplitude factors, whose products
// land around the 1e-10 default tolerance) and direct tolerance-grid
// multiples.
func FuzzInternTol(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	// zeroweight_test.go near-underflow scales and their pairwise
	// products straddling the default tolerance.
	f.Add(seed(1e-4, -1e-4, 1e-5, 1e-5, 3e-6, -3e-6, 1e-6, 1e-6))
	f.Add(seed(1e-4*1e-5, 1e-5*1e-5, 3e-6*3e-6, 1e-6*1e-6, 1e-4*3e-6, -1e-5*3e-6))
	// Tolerance-grid multiples: cell boundaries (4·tol) and half-cells.
	f.Add(seed(4e-10, 8e-10, 2e-10, 6e-10, -4e-10, -2e-10, 1e-10, 5e-11))
	// Snap targets and their neighbourhoods.
	f.Add(seed(0, 1, -1, math.Sqrt2/2, -math.Sqrt2/2, 1+5e-11, math.Sqrt2/2-5e-11, 1e-11))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tol := range []float64{Tolerance, 1e-14} {
			sw := newTableTolOpts(tol, true, true)
			ch := newTableTolOpts(tol, false, true)
			cell := 4 * tol
			var swVals, chVals []*Value
			probe := func(re, im float64) {
				if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
					return
				}
				a := sw.Lookup(re, im)
				b := ch.Lookup(re, im)
				if math.Float64bits(a.Re()) != math.Float64bits(b.Re()) ||
					math.Float64bits(a.Im()) != math.Float64bits(b.Im()) {
					t.Fatalf("tol=%g Lookup(%g,%g): swiss %v%+vi, chained %v%+vi",
						tol, re, im, a.Re(), a.Im(), b.Re(), b.Im())
				}
				swVals = append(swVals, a)
				chVals = append(chVals, b)
			}
			var vals []float64
			for i := 0; i+8 <= len(data); i += 8 {
				vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
			}
			for i, re := range vals {
				im := 0.0
				if i+1 < len(vals) {
					im = vals[i+1]
				}
				probe(re, im)
				for _, d := range []float64{tol / 2, -tol / 2, 2 * tol, -2 * tol, cell - tol/2, -(cell - tol/2)} {
					probe(re+d, im)
					probe(re, im+d)
					probe(re+d, im-d)
				}
				// Identical mark/sweep rounds partway through: keep every
				// other interned value alive in both planes, then keep
				// interning into the (partly recycled) tables.
				if i%5 == 4 {
					sw.BeginMark()
					ch.BeginMark()
					for j := 0; j < len(swVals); j += 2 {
						sw.Mark(swVals[j])
						ch.Mark(chVals[j])
					}
					if ds, dc := sw.Sweep(), ch.Sweep(); ds != dc {
						t.Fatalf("tol=%g: sweep dropped %d (swiss) vs %d (chained)", tol, ds, dc)
					}
					swVals, chVals = swVals[:0], chVals[:0]
				}
			}
			if sw.Count() != ch.Count() {
				t.Fatalf("tol=%g: swiss holds %d values, chained %d", tol, sw.Count(), ch.Count())
			}
		}
	})
}
