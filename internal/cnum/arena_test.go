package cnum

import (
	"math"
	"testing"
)

// TestMarkSweepRecycles drives the full mark/sweep/recycle cycle the
// DD garbage collector runs: unmarked unpinned values are dropped,
// their slots are NaN-poisoned onto the free list, and the next
// Lookup reuses a slot while keeping its (still unique) ID.
func TestMarkSweepRecycles(t *testing.T) {
	tb := NewTable()
	if !tb.recycle {
		t.Skip("arena disabled (DDSIM_DD_ARENA=off)")
	}
	keep := tb.Lookup(0.25, 0.5)
	drop := tb.Lookup(0.125, -0.5)
	dropID := drop.ID()
	before := tb.Count()

	tb.BeginMark()
	tb.Mark(keep)
	tb.Mark(nil) // ignored
	if dropped := tb.Sweep(); dropped != 1 {
		t.Fatalf("Sweep dropped %d values, want 1", dropped)
	}
	if tb.Count() != before-1 {
		t.Fatalf("Count %d after sweep, want %d", tb.Count(), before-1)
	}
	if !math.IsNaN(drop.Re()) || !math.IsNaN(drop.Im()) {
		t.Fatalf("swept slot not poisoned: %v", drop.Complex())
	}
	// The recycled slot keeps its id and is reused by the next insert.
	reborn := tb.Lookup(0.375, 0.75)
	if reborn.ID() != dropID {
		t.Errorf("recycled value has id %d, want reused id %d", reborn.ID(), dropID)
	}
	if reborn != drop {
		t.Errorf("free-list slot not reused: got %p, want %p", reborn, drop)
	}
	if keep.Re() != 0.25 || keep.Im() != 0.5 {
		t.Errorf("marked value corrupted by sweep: %v", keep.Complex())
	}
}

// TestPinSurvivesSweep: pinned root weights survive an unmarked
// sweep; unpinning re-exposes them, and over-unpinning panics.
func TestPinSurvivesSweep(t *testing.T) {
	tb := NewTable()
	v := tb.Lookup(0.3, 0.7)
	tb.Pin(v)
	tb.Pin(v) // pins nest
	tb.Pin(nil)
	tb.BeginMark()
	if dropped := tb.Sweep(); dropped != 0 {
		t.Fatalf("pinned value swept (%d dropped)", dropped)
	}
	if v.Re() != 0.3 {
		t.Fatalf("pinned value corrupted: %v", v.Complex())
	}
	tb.Unpin(v)
	tb.Unpin(v)
	tb.Unpin(nil)
	tb.BeginMark()
	if dropped := tb.Sweep(); dropped != 1 {
		t.Fatalf("unpinned value not swept (%d dropped)", dropped)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned value did not panic")
		}
	}()
	tb.Unpin(tb.One)
}

// TestZeroOneSurviveSweep: the canonical constants survive any sweep
// unmarked and unpinned — every diagram's terminal weights alias them.
func TestZeroOneSurviveSweep(t *testing.T) {
	tb := NewTable()
	tb.BeginMark()
	tb.Sweep()
	if tb.Zero.Re() != 0 || tb.One.Re() != 1 {
		t.Fatalf("canonical constants swept: zero=%v one=%v", tb.Zero.Complex(), tb.One.Complex())
	}
}

// TestReleaseReturnsSlabs: Release pools the slabs, is idempotent,
// and a fresh table allocating afterwards (likely from the pooled
// slabs) starts clean.
func TestReleaseReturnsSlabs(t *testing.T) {
	tb := NewTable()
	// Force more than one slab so the loop in Release iterates.
	for i := 0; i < valueSlabSize+10; i++ {
		tb.Lookup(float64(i)*1e-3, 1)
	}
	if tb.recycle && len(tb.slabs) < 2 {
		t.Fatalf("expected ≥2 slabs, got %d", len(tb.slabs))
	}
	tb.Release()
	tb.Release() // idempotent
	if tb.recycle && (tb.buckets != nil || tb.Zero != nil) {
		t.Fatal("Release left table fields populated")
	}
	fresh := NewTable()
	v := fresh.Lookup(0.5, -0.5)
	if v.Re() != 0.5 || v.Im() != -0.5 {
		t.Fatalf("fresh table after Release returned %v", v.Complex())
	}
	if fresh.Zero.Re() != 0 || fresh.One.Re() != 1 {
		t.Fatal("fresh table constants wrong after pooled-slab reuse")
	}
}

// TestHeapModeMatchesArenaMode: with DDSIM_DD_ARENA=off values come
// from the Go heap and sweeps drop rather than recycle; interning
// semantics must be unchanged.
func TestHeapModeMatchesArenaMode(t *testing.T) {
	t.Setenv("DDSIM_DD_ARENA", "off")
	tb := NewTable()
	if tb.recycle {
		t.Fatal("DDSIM_DD_ARENA=off ignored")
	}
	a := tb.Lookup(0.25, 0.5)
	b := tb.Lookup(0.25, 0.5)
	if a != b {
		t.Fatal("interning broken in heap mode")
	}
	before := tb.Count()
	tb.BeginMark()
	if dropped := tb.Sweep(); dropped != 1 || tb.Count() != before-1 {
		t.Fatalf("heap-mode sweep dropped %d (count %d, want %d)", dropped, tb.Count(), before-1)
	}
	// Heap mode never poisons: the Go GC owns the memory.
	if math.IsNaN(a.Re()) {
		t.Fatal("heap-mode sweep poisoned a value")
	}
	tb.Release() // no-op in heap mode
	if tb.Zero == nil {
		t.Fatal("heap-mode Release cleared fields")
	}
}

// TestGrowRehashes: inserting past the initial bucket load factor
// grows the table; every previously interned value must still be
// found at its identity afterwards.
func TestGrowRehashes(t *testing.T) {
	tb := NewTableTol(1e-12) // tight tolerance: every insert is distinct
	type pair struct {
		re, im float64
		v      *Value
	}
	var vals []pair
	for i := 0; i < 20000; i++ {
		re := float64(i%541) * 1e-3
		im := float64(i/541) * 1e-3
		vals = append(vals, pair{re, im, tb.Lookup(re, im)})
	}
	for _, p := range vals {
		if got := tb.Lookup(p.re, p.im); got != p.v {
			t.Fatalf("value (%v,%v) lost its identity after grow", p.re, p.im)
		}
	}
}
