package cnum

import (
	"math"
	"math/rand"
	"testing"
)

// newPlanePair returns a swiss and a chained table with identical
// tolerance and recycling, for differential checks.
func newPlanePair(tol float64) (sw, ch *Table) {
	return newTableTolOpts(tol, true, true), newTableTolOpts(tol, false, true)
}

// boundaryProbes derives lookups that straddle the hash-grid cell
// boundaries around (re,im): offsets of ±tol/2 (same representative),
// ±2·tol (distinct representative) and ±(cell−tol/2) (adjacent cell,
// within reach of the single-probe neighbour guarantee).
func boundaryProbes(t *Table, re, im float64) [][2]float64 {
	offs := []float64{0, t.tol / 2, -t.tol / 2, 2 * t.tol, -2 * t.tol, t.cell - t.tol/2, -(t.cell - t.tol / 2)}
	var out [][2]float64
	for _, dr := range offs {
		out = append(out, [2]float64{re + dr, im}, [2]float64{re, im + dr}, [2]float64{re + dr, im - dr})
	}
	return out
}

// feedBoth sends one lookup to both planes and fails unless the
// returned representatives are bit-identical.
func feedBoth(t *testing.T, sw, ch *Table, re, im float64) (*Value, *Value) {
	t.Helper()
	a := sw.Lookup(re, im)
	b := ch.Lookup(re, im)
	if math.Float64bits(a.Re()) != math.Float64bits(b.Re()) ||
		math.Float64bits(a.Im()) != math.Float64bits(b.Im()) {
		t.Fatalf("tol=%g Lookup(%v,%v): swiss %v%+vi, chained %v%+vi",
			sw.tol, re, im, a.Re(), a.Im(), b.Re(), b.Im())
	}
	return a, b
}

// TestSwissChainedLookupIdentical drives identical random workloads —
// including cell-boundary straddlers and derived Mul/Div/Add/Neg/Conj
// traffic — through both lookup planes at the default and the exact-
// engine tolerance, demanding bit-identical representatives
// throughout. This is the table-level core of the kernel's
// differential guarantee.
func TestSwissChainedLookupIdentical(t *testing.T) {
	for _, tol := range []float64{Tolerance, 1e-14} {
		sw, ch := newPlanePair(tol)
		rng := rand.New(rand.NewSource(41))
		var swVals, chVals []*Value
		for i := 0; i < 4000; i++ {
			var re, im float64
			switch i % 3 {
			case 0: // generic amplitudes
				re, im = rng.NormFloat64(), rng.NormFloat64()
			case 1: // near-underflow magnitudes around the tolerance
				s := math.Pow(10, -4-6*rng.Float64()) // 1e-4 .. 1e-10
				re, im = s*rng.NormFloat64(), s*rng.NormFloat64()
			default: // revisit an earlier value's neighbourhood
				if len(swVals) == 0 {
					continue
				}
				v := swVals[rng.Intn(len(swVals))]
				re = v.Re() + (rng.Float64()-0.5)*4*tol
				im = v.Im() + (rng.Float64()-0.5)*4*tol
			}
			a, b := feedBoth(t, sw, ch, re, im)
			swVals = append(swVals, a)
			chVals = append(chVals, b)
			for _, pr := range boundaryProbes(sw, re, im) {
				feedBoth(t, sw, ch, pr[0], pr[1])
			}
			// Derived arithmetic traffic exercises the snap/identity
			// fast paths on interned operands.
			if len(swVals) > 1 {
				j := rng.Intn(len(swVals) - 1)
				sa, ca := swVals[j], chVals[j]
				cmp := func(x, y *Value) {
					if math.Float64bits(x.Re()) != math.Float64bits(y.Re()) ||
						math.Float64bits(x.Im()) != math.Float64bits(y.Im()) {
						t.Fatalf("tol=%g derived op diverged: %v vs %v", tol, x, y)
					}
				}
				cmp(sw.Mul(a, sa), ch.Mul(b, ca))
				cmp(sw.Add(a, sa), ch.Add(b, ca))
				cmp(sw.Neg(a), ch.Neg(b))
				cmp(sw.Conj(a), ch.Conj(b))
				if sa != sw.Zero {
					cmp(sw.Div(a, sa), ch.Div(b, ca))
				}
			}
		}
		if sw.Count() != ch.Count() {
			t.Fatalf("tol=%g: swiss holds %d values, chained %d", tol, sw.Count(), ch.Count())
		}
	}
}

// TestSwissSweepIdentical marks the same survivor set in both planes
// and checks Sweep agrees on the drop count, the surviving population,
// and the representatives returned afterwards — covering the per-cell
// chain filtering and the tombstone-free control-word rebuild.
func TestSwissSweepIdentical(t *testing.T) {
	sw, ch := newPlanePair(Tolerance)
	rng := rand.New(rand.NewSource(97))
	var swVals, chVals []*Value
	for i := 0; i < 3000; i++ {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		a, b := feedBoth(t, sw, ch, re, im)
		swVals = append(swVals, a)
		chVals = append(chVals, b)
	}
	// Pin a few root weights; mark every third value.
	for i := 0; i < 10; i++ {
		sw.Pin(swVals[i*7])
		ch.Pin(chVals[i*7])
	}
	sw.BeginMark()
	ch.BeginMark()
	for i := 0; i < len(swVals); i += 3 {
		sw.Mark(swVals[i])
		ch.Mark(chVals[i])
	}
	ds, dc := sw.Sweep(), ch.Sweep()
	if ds != dc {
		t.Fatalf("Sweep dropped %d (swiss) vs %d (chained)", ds, dc)
	}
	if sw.Count() != ch.Count() {
		t.Fatalf("post-sweep counts differ: %d vs %d", sw.Count(), ch.Count())
	}
	// Survivors must still intern to themselves; new traffic must stay
	// identical after the rebuild (recycled slots included).
	for i := 0; i < len(swVals); i += 3 {
		if got := sw.Lookup(swVals[i].Re(), swVals[i].Im()); got != swVals[i] {
			t.Fatalf("marked survivor %d not found after swiss sweep", i)
		}
	}
	for i := 0; i < 2000; i++ {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		feedBoth(t, sw, ch, re, im)
	}
}

// TestSwissCellGrowth forces the cell directory through several
// rehashes and verifies no value is lost or duplicated: every
// previously interned representative is still found by a fresh lookup
// of its exact coordinates, and the live count matches.
func TestSwissCellGrowth(t *testing.T) {
	tb := newTableTolOpts(Tolerance, true, true)
	const n = 20000 // well past the 4096-slot initial directory
	vals := make([]*Value, 0, n)
	for i := 0; i < n; i++ {
		// Distinct cells: spacing 10·cell guarantees no sharing (i+1
		// keeps x away from 0, which would snap to the interned Zero).
		x := float64(i+1) * 10 * tb.cell
		vals = append(vals, tb.Lookup(x, -x))
	}
	if got := tb.Count(); got != n+2 { // +Zero +One
		t.Fatalf("Count() = %d, want %d", got, n+2)
	}
	for i, v := range vals {
		if got := tb.Lookup(v.Re(), v.Im()); got != v {
			t.Fatalf("value %d lost across cell-directory growth", i)
		}
	}
}

// TestSwissNeighborGuarantee: the 4·tol cell geometry must keep the
// "home cell plus at most the boundary-adjacent cell per axis"
// single-probe guarantee in the swiss plane: a value interned just
// under a cell boundary is found when probed from the far side.
func TestSwissNeighborGuarantee(t *testing.T) {
	tb := newTableTolOpts(Tolerance, true, true)
	cell := tb.cell
	base := 123 * cell // a cell boundary
	v := tb.Lookup(base-tb.tol/4, 0)
	if got := tb.Lookup(base+tb.tol/4, 0); got != v {
		t.Fatalf("cross-boundary probe missed: %v vs %v", got, v)
	}
	w := tb.Lookup(0, base+cell-tb.tol/4)
	if got := tb.Lookup(0, base+cell+tb.tol/4); got != w {
		t.Fatalf("imaginary-axis cross-boundary probe missed")
	}
	// Diagonal: both components near a boundary.
	d := tb.Lookup(base-tb.tol/4, base-tb.tol/4)
	if got := tb.Lookup(base+tb.tol/4, base+tb.tol/4); got != d {
		t.Fatalf("diagonal cross-boundary probe missed")
	}
}

// TestSwissPinSurvivesSweep: Pin/Unpin semantics are plane-independent
// — a pinned root weight survives an unmarked sweep in the swiss plane
// and its storage is not recycled.
func TestSwissPinSurvivesSweep(t *testing.T) {
	tb := newTableTolOpts(Tolerance, true, true)
	v := tb.Lookup(0.123456, -0.654321)
	tb.Pin(v)
	tb.BeginMark()
	if tb.Sweep() != 0 {
		t.Fatalf("pinned value swept")
	}
	if got := tb.Lookup(0.123456, -0.654321); got != v {
		t.Fatalf("pinned value lost identity after sweep")
	}
	tb.Unpin(v)
	tb.BeginMark()
	if tb.Sweep() != 1 {
		t.Fatalf("unpinned value not swept")
	}
}
