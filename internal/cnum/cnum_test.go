package cnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroOneCanonical(t *testing.T) {
	tb := NewTable()
	if tb.Zero.Re() != 0 || tb.Zero.Im() != 0 {
		t.Fatalf("Zero = %v", tb.Zero)
	}
	if tb.One.Re() != 1 || tb.One.Im() != 0 {
		t.Fatalf("One = %v", tb.One)
	}
	if tb.Lookup(0, 0) != tb.Zero {
		t.Error("Lookup(0,0) did not return canonical Zero")
	}
	if tb.Lookup(1, 0) != tb.One {
		t.Error("Lookup(1,0) did not return canonical One")
	}
}

func TestSnapNearConstants(t *testing.T) {
	tb := NewTable()
	eps := Tolerance / 2
	if tb.Lookup(eps, -eps) != tb.Zero {
		t.Error("value within tolerance of 0 not snapped to Zero")
	}
	if tb.Lookup(1+eps, eps) != tb.One {
		t.Error("value within tolerance of 1 not snapped to One")
	}
	h := tb.Lookup(math.Sqrt2/2, 0)
	h2 := tb.Lookup(1/math.Sqrt2+eps, 0)
	if h != h2 {
		t.Error("value within tolerance of 1/sqrt2 not identified")
	}
	if h.Re() != math.Sqrt2/2 {
		t.Errorf("canonical 1/sqrt2 representative is %v", h.Re())
	}
}

func TestInterningIdentifiesCloseValues(t *testing.T) {
	tb := NewTable()
	a := tb.Lookup(0.3, 0.4)
	b := tb.Lookup(0.3+Tolerance/3, 0.4-Tolerance/3)
	if a != b {
		t.Error("values within tolerance were not identified")
	}
	c := tb.Lookup(0.3+10*Tolerance, 0.4)
	if a == c {
		t.Error("values beyond tolerance were wrongly identified")
	}
}

func TestInterningAcrossGridBoundary(t *testing.T) {
	tb := NewTable()
	// Pick a value exactly on a quantisation boundary; the nearby value
	// falls into the neighbouring cell but must still be identified.
	x := 7 * Tolerance
	a := tb.Lookup(x, 0)
	b := tb.Lookup(x-Tolerance/2, 0)
	if a != b {
		t.Error("cross-cell values within tolerance were not identified")
	}
}

func TestIdempotentLookup(t *testing.T) {
	tb := NewTable()
	f := func(re, im float64) bool {
		re = math.Mod(re, 4)
		im = math.Mod(im, 4)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		v1 := tb.Lookup(re, im)
		v2 := tb.Lookup(re, im)
		v3 := tb.Lookup(v1.Re(), v1.Im())
		return v1 == v2 && v1 == v3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArithmeticHelpers(t *testing.T) {
	tb := NewTable()
	a := tb.Lookup(0.5, 0.5)
	b := tb.Lookup(0.25, -0.75)

	if got := tb.Mul(a, tb.One); got != a {
		t.Error("a*1 != a")
	}
	if got := tb.Mul(a, tb.Zero); got != tb.Zero {
		t.Error("a*0 != 0")
	}
	want := a.Complex() * b.Complex()
	if got := tb.Mul(a, b).Complex(); !ApproxEqual(got, want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	want = a.Complex() + b.Complex()
	if got := tb.Add(a, b).Complex(); !ApproxEqual(got, want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	want = a.Complex() / b.Complex()
	if got := tb.Div(a, b).Complex(); !ApproxEqual(got, want) {
		t.Errorf("Div = %v, want %v", got, want)
	}
	if got := tb.Neg(a).Complex(); !ApproxEqual(got, -a.Complex()) {
		t.Errorf("Neg = %v", got)
	}
	if got := tb.Conj(a).Complex(); !ApproxEqual(got, complex(0.5, -0.5)) {
		t.Errorf("Conj = %v", got)
	}
	if tb.Conj(tb.One) != tb.One {
		t.Error("Conj(1) should be the canonical One")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	tb := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("Div by Zero did not panic")
		}
	}()
	tb.Div(tb.One, tb.Zero)
}

func TestNaNPanics(t *testing.T) {
	tb := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("Lookup(NaN) did not panic")
		}
	}()
	tb.Lookup(math.NaN(), 0)
}

func TestMulDivRoundTrip(t *testing.T) {
	tb := NewTable()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := tb.Lookup(rng.Float64()*2-1, rng.Float64()*2-1)
		b := tb.Lookup(rng.Float64()+0.1, rng.Float64()+0.1)
		got := tb.Div(tb.Mul(a, b), b)
		if !ApproxEqual(got.Complex(), a.Complex()) {
			t.Fatalf("(a*b)/b = %v, want %v", got.Complex(), a.Complex())
		}
	}
}

func TestHitRateGrows(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 100; i++ {
		tb.Lookup(0.123, 0.456)
	}
	if tb.HitRate() < 0.9 {
		t.Errorf("hit rate = %v, want > 0.9 for repeated lookups", tb.HitRate())
	}
	if tb.Count() < 3 { // Zero, One, 0.123+0.456i
		t.Errorf("count = %d", tb.Count())
	}
}

func TestMag2(t *testing.T) {
	tb := NewTable()
	v := tb.Lookup(3, 4)
	if v.Mag2() != 25 {
		t.Errorf("Mag2 = %v, want 25", v.Mag2())
	}
}

func TestStringFormats(t *testing.T) {
	tb := NewTable()
	cases := map[*Value]string{
		tb.Lookup(0.5, 0):    "0.5",
		tb.Lookup(0, -1):     "-1i",
		tb.Lookup(0.5, 0.5):  "0.5+0.5i",
		tb.Lookup(0.5, -0.5): "0.5-0.5i",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
