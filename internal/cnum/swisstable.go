package cnum

// The swiss-table lookup plane of the weight-interning table (see
// internal/swiss for the control-byte machinery and DDSIM_DD_TABLES
// for the toggle).
//
// The open-addressing table is keyed on tolerance-grid cells, not on
// individual values: one slot per occupied 4·tol cell, holding the
// cell's values as a newest-first chain (almost always length one —
// two values share a cell only when they are between tol and 4·tol
// apart). This keeps the chained table's matching semantics exactly:
// a lookup probes the home cell and at most the boundary-adjacent
// cells reported by neighborDir, scanning each cell's values newest
// first, so both implementations resolve tolerance ties identically
// and the differential suites can demand bit-identical results.
//
// There are no tombstones: values die only inside Sweep (the DD
// package's garbage collection), which filters the cell chains and
// rebuilds the control words from the surviving cells.

import (
	"sync"

	"ddsim/internal/swiss"
)

// cellTablePool recycles minimum-geometry cell directories across
// Table lifetimes (arena mode only, like the value-slab pool): a short
// job builds one weight table per worker, and the ~100 KiB directory
// would otherwise dominate its allocation profile. Tables that grew
// past the minimum are left to the Go collector.
var cellTablePool = sync.Pool{
	New: func() interface{} {
		t := newCellTable(minCellGroups)
		return &t
	},
}

// getCellTable draws a clean minimum-size directory from the pool.
func getCellTable() cellTable { return *cellTablePool.Get().(*cellTable) }

// putCellTable returns a directory to the pool, scrubbed of value
// pointers. Grown directories are dropped.
func putCellTable(t *cellTable) {
	if len(t.ctrl) != minCellGroups {
		return
	}
	for i := range t.ctrl {
		t.ctrl[i] = swiss.EmptyWord
	}
	clear(t.slots)
	clear(t.scratch)
	t.scratch = t.scratch[:0]
	t.resident = 0
	ct := *t
	cellTablePool.Put(&ct)
}

// minCellGroups is the smallest cell-table size (512 groups = 4096
// slots, matching the chained implementation's initial bucket array).
// Sweep never compacts below it, so steady-state workloads do not
// thrash between shrink and regrow.
const minCellGroups = 512

// cellSlot is one occupied tolerance-grid cell: its coordinates and
// the newest-first chain of values interned into it.
type cellSlot struct {
	qr, qi int64
	head   *Value
}

// cellTable is the open-addressing cell directory: one control byte
// and one slot per cell, probed in groups of eight.
type cellTable struct {
	ctrl     []uint64
	slots    []cellSlot
	mask     uint64 // group count − 1
	resident int    // occupied cells
	growAt   int    // resident bound before the next insert rehashes

	// scratch stashes the live cells during an in-place rebuild (the
	// directory cannot be read while it is being re-inserted into).
	// Reused across sweeps, cleared after use so it roots no values.
	scratch []cellSlot
}

func newCellTable(groups int) cellTable {
	t := cellTable{
		ctrl:   make([]uint64, groups),
		slots:  make([]cellSlot, groups*swiss.GroupSize),
		mask:   uint64(groups - 1),
		growAt: swiss.GrowAt(groups),
	}
	for i := range t.ctrl {
		t.ctrl[i] = swiss.EmptyWord
	}
	return t
}

// findCell returns the slot of cell (qr,qi), or nil. One control-word
// load covers eight cells; H2 false positives are weeded out by the
// exact cell-coordinate comparison.
func (t *cellTable) findCell(qr, qi int64) *cellSlot {
	h := cellHash(qr, qi)
	h2 := swiss.H2(h)
	p := swiss.NewProbe(swiss.H1(h), t.mask)
	for {
		w := t.ctrl[p.Group()]
		for m := swiss.MatchH2(w, h2); m != 0; m = swiss.Next(m) {
			s := &t.slots[int(p.Group())*swiss.GroupSize+swiss.First(m)]
			if s.qr == qr && s.qi == qi {
				return s
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return nil
		}
		p.Advance()
	}
}

// addCell inserts a slot for cell (qr,qi), which must not be resident.
// The caller has already ensured capacity (see Table.lookupSwiss).
func (t *cellTable) addCell(qr, qi int64, head *Value) {
	h := cellHash(qr, qi)
	p := swiss.NewProbe(swiss.H1(h), t.mask)
	for {
		g := p.Group()
		if m := swiss.MatchEmpty(t.ctrl[g]); m != 0 {
			i := swiss.First(m)
			t.ctrl[g] = swiss.SetByte(t.ctrl[g], i, swiss.H2(h))
			t.slots[int(g)*swiss.GroupSize+i] = cellSlot{qr: qr, qi: qi, head: head}
			t.resident++
			return
		}
		p.Advance()
	}
}

// rebuild re-inserts every cell with a non-empty chain into a table
// sized for n cells — the rehash-on-load path shared by growth (n >
// current capacity) and Sweep compaction (dead cells dropped, control
// words rebuilt). Chains move as units, so within-cell value order is
// untouched. The directory never shrinks (matching the chained
// plane's bucket array): when the geometry is unchanged the existing
// arrays are rebuilt in place through the scratch buffer, so
// steady-state sweeps allocate nothing.
func (t *cellTable) rebuild(n int) {
	groups := swiss.GroupsFor(n, len(t.ctrl))
	if groups != len(t.ctrl) {
		nt := newCellTable(groups)
		for g := range t.ctrl {
			for m := swiss.MatchOccupied(t.ctrl[g]); m != 0; m = swiss.Next(m) {
				s := &t.slots[int(g)*swiss.GroupSize+swiss.First(m)]
				if s.head != nil {
					nt.addCell(s.qr, s.qi, s.head)
				}
			}
		}
		*t = nt
		return
	}
	t.scratch = t.scratch[:0]
	for g := range t.ctrl {
		for m := swiss.MatchOccupied(t.ctrl[g]); m != 0; m = swiss.Next(m) {
			s := &t.slots[int(g)*swiss.GroupSize+swiss.First(m)]
			if s.head != nil {
				t.scratch = append(t.scratch, *s)
			}
		}
		t.ctrl[g] = swiss.EmptyWord
	}
	clear(t.slots)
	t.resident = 0
	for i := range t.scratch {
		t.addCell(t.scratch[i].qr, t.scratch[i].qi, t.scratch[i].head)
	}
	clear(t.scratch)
	t.scratch = t.scratch[:0]
}

// lookupSwiss is Lookup's swiss-table body: probe the home cell, then
// the boundary-adjacent cells that could hold a within-tolerance
// match, then intern a fresh value. Cell scan order (home, real-axis
// neighbour, imaginary-axis neighbour, diagonal; newest value first
// within each cell) is identical to the chained implementation, so the
// two resolve tolerance ties the same way.
func (t *Table) lookupSwiss(qr, qi int64, re, im float64) *Value {
	home := t.cells.findCell(qr, qi)
	if v := t.scanCell(home, re, im); v != nil {
		t.hits++
		return v
	}
	nr := t.neighborDir(re, qr)
	ni := t.neighborDir(im, qi)
	if nr != 0 {
		if v := t.scanCell(t.cells.findCell(qr+nr, qi), re, im); v != nil {
			t.hits++
			return v
		}
	}
	if ni != 0 {
		if v := t.scanCell(t.cells.findCell(qr, qi+ni), re, im); v != nil {
			t.hits++
			return v
		}
	}
	if nr != 0 && ni != 0 {
		if v := t.scanCell(t.cells.findCell(qr+nr, qi+ni), re, im); v != nil {
			t.hits++
			return v
		}
	}

	v := t.newValue(re, im)
	if home != nil {
		v.next = home.head
		home.head = v
	} else {
		if t.cells.resident >= t.cells.growAt {
			t.cells.rebuild(t.cells.resident + 1)
			// home stayed nil, so no slot pointer went stale here.
		}
		v.next = nil
		t.cells.addCell(qr, qi, v)
	}
	t.count++
	return v
}

// scanCell walks one cell's value chain for a within-tolerance match.
func (t *Table) scanCell(s *cellSlot, re, im float64) *Value {
	if s == nil {
		return nil
	}
	for v := s.head; v != nil; v = v.next {
		if t.closeEnough(v.re, re) && t.closeEnough(v.im, im) {
			return v
		}
	}
	return nil
}

// sweepSwiss is Sweep's swiss-table body: filter every cell chain in
// slot order (preserving within-cell order), then rebuild the control
// words from the surviving cells so emptied cells leave no tombstones
// behind.
func (t *Table) sweepSwiss() int {
	dropped := 0
	liveCells := 0
	for g := range t.cells.ctrl {
		for m := swiss.MatchOccupied(t.cells.ctrl[g]); m != 0; m = swiss.Next(m) {
			s := &t.cells.slots[int(g)*swiss.GroupSize+swiss.First(m)]
			var head *Value
			tail := &head
			for v := s.head; v != nil; {
				next := v.next
				if v.marked || v.pins > 0 || v == t.Zero || v == t.One {
					*tail = v
					v.next = nil
					tail = &v.next
				} else {
					dropped++
					t.count--
					t.retire(v)
				}
				v = next
			}
			s.head = head
			if head != nil {
				liveCells++
			}
		}
	}
	t.cells.rebuild(liveCells)
	return dropped
}

// forEachValueSwiss visits every live value (BeginMark).
func (t *Table) forEachValueSwiss(fn func(*Value)) {
	for g := range t.cells.ctrl {
		for m := swiss.MatchOccupied(t.cells.ctrl[g]); m != 0; m = swiss.Next(m) {
			for v := t.cells.slots[int(g)*swiss.GroupSize+swiss.First(m)].head; v != nil; v = v.next {
				fn(v)
			}
		}
	}
}
