package swiss

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// byteOf extracts control byte i from a word.
func byteOf(w uint64, i int) uint8 { return uint8(w >> (uint(i) * 8)) }

// wordOf assembles a control word from eight bytes.
func wordOf(b [8]uint8) uint64 {
	var w uint64
	for i := 7; i >= 0; i-- {
		w = w<<8 | uint64(b[i])
	}
	return w
}

// TestMatchH2Property: against a brute-force scan, MatchH2 must flag
// every true match and only ever add false positives above the first
// true match (the documented SWAR borrow artefact) — and when a word
// contains no true match, no bit at all.
func TestMatchH2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b [8]uint8
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = Empty
			} else {
				b[i] = uint8(rng.Intn(128))
			}
		}
		h2 := uint8(rng.Intn(128))
		m := MatchH2(wordOf(b), h2)
		firstTrue := -1
		for i := 0; i < 8; i++ {
			if b[i] == h2 {
				if m&(1<<(uint(i)*8+7)) == 0 {
					return false // missed a true match
				}
				if firstTrue < 0 {
					firstTrue = i
				}
			}
		}
		for i := 0; i < 8; i++ {
			if b[i] != h2 && m&(1<<(uint(i)*8+7)) != 0 {
				// False positive: only legal above a true match.
				if firstTrue < 0 || i < firstTrue {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestMatchEmptyExact: empty/occupied masks must be exact complements
// over the eight slots for every control byte mix.
func TestMatchEmptyExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b [8]uint8
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = Empty
			} else {
				b[i] = uint8(rng.Intn(128))
			}
		}
		w := wordOf(b)
		me, mo := MatchEmpty(w), MatchOccupied(w)
		if me&mo != 0 || me|mo != hiBits {
			return false
		}
		for i := 0; i < 8; i++ {
			want := b[i] == Empty
			if (me&(1<<(uint(i)*8+7)) != 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestFirstMatchBelowFalsePositives: taking First on a MatchH2 mask is
// always a true match when any true match exists — the property insert
// and lookup fast paths rely on.
func TestFirstMatchBelowFalsePositives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b [8]uint8
		for i := range b {
			b[i] = uint8(rng.Intn(129)) // 128 == Empty
			if b[i] == 128 {
				b[i] = Empty
			}
		}
		h2 := uint8(rng.Intn(128))
		hasTrue := false
		for _, c := range b {
			if c == h2 {
				hasTrue = true
			}
		}
		m := MatchH2(wordOf(b), h2)
		if !hasTrue {
			// No true match: any set bit must be a false positive, which
			// requires a borrow from a true zero byte — impossible.
			return m == 0
		}
		return b[First(m)] == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSetByte: SetByte touches exactly the addressed byte.
func TestSetByte(t *testing.T) {
	w := EmptyWord
	for i := 0; i < 8; i++ {
		w2 := SetByte(w, i, 0x5a)
		for j := 0; j < 8; j++ {
			want := uint8(Empty)
			if j == i {
				want = 0x5a
			}
			if byteOf(w2, j) != want {
				t.Fatalf("SetByte(%d): byte %d = %#x, want %#x", i, j, byteOf(w2, j), want)
			}
		}
	}
}

// TestProbeVisitsAllGroups: the triangular sequence must visit every
// group exactly once within the first groups steps, for every
// power-of-two size and start — the termination guarantee of insert.
func TestProbeVisitsAllGroups(t *testing.T) {
	for _, groups := range []int{1, 2, 4, 8, 64, 512} {
		mask := uint64(groups - 1)
		for start := 0; start < groups; start++ {
			seen := make(map[uint64]bool, groups)
			p := NewProbe(uint64(start), mask)
			for i := 0; i < groups; i++ {
				if seen[p.Group()] {
					t.Fatalf("groups=%d start=%d: group %d visited twice", groups, start, p.Group())
				}
				seen[p.Group()] = true
				p.Advance()
			}
			if len(seen) != groups {
				t.Fatalf("groups=%d start=%d: visited %d distinct groups", groups, start, len(seen))
			}
		}
	}
}

// TestGeometry: GroupsFor/GrowAt respect the 7/8 bound and powers of
// two.
func TestGeometry(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 55, 56, 57, 1000, 250000} {
		g := GroupsFor(n, 4)
		if bits.OnesCount(uint(g)) != 1 {
			t.Fatalf("GroupsFor(%d) = %d, not a power of two", n, g)
		}
		if GrowAt(g) <= n {
			t.Fatalf("GroupsFor(%d) = %d holds only %d residents", n, g, GrowAt(g))
		}
		if g > 4 && GrowAt(g/2) > n {
			t.Fatalf("GroupsFor(%d) = %d not minimal", n, g)
		}
	}
	if GrowAt(512) != 512*8*7/8 {
		t.Fatalf("GrowAt(512) = %d", GrowAt(512))
	}
}

// swissSet is a minimal reference table over uint64 keys built only on
// the exported primitives — the model for the insert/lookup/rehash
// invariants the kernel tables rely on.
type swissSet struct {
	ctrl  []uint64
	slots []uint64
	mask  uint64
	n     int
}

func newSwissSet(groups int) *swissSet {
	s := &swissSet{ctrl: make([]uint64, groups), slots: make([]uint64, groups*GroupSize), mask: uint64(groups - 1)}
	for i := range s.ctrl {
		s.ctrl[i] = EmptyWord
	}
	return s
}

func hashKey(k uint64) uint64 {
	h := k * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func (s *swissSet) find(k uint64) (int, bool) {
	h := hashKey(k)
	h2 := H2(h)
	p := NewProbe(H1(h), s.mask)
	for {
		w := s.ctrl[p.Group()]
		for m := MatchH2(w, h2); m != 0; m = Next(m) {
			i := int(p.Group())*GroupSize + First(m)
			if s.slots[i] == k {
				return i, true
			}
		}
		if MatchEmpty(w) != 0 {
			return -1, false
		}
		p.Advance()
	}
}

func (s *swissSet) insert(k uint64) {
	if _, ok := s.find(k); ok {
		return
	}
	if s.n >= GrowAt(len(s.ctrl)) {
		old := s.slots
		oldCtrl := s.ctrl
		ns := newSwissSet(len(s.ctrl) * 2)
		for g := range oldCtrl {
			for m := MatchOccupied(oldCtrl[g]); m != 0; m = Next(m) {
				ns.insert(old[g*GroupSize+First(m)])
			}
		}
		*s = *ns
	}
	h := hashKey(k)
	p := NewProbe(H1(h), s.mask)
	for {
		g := p.Group()
		if m := MatchEmpty(s.ctrl[g]); m != 0 {
			i := First(m)
			s.ctrl[g] = SetByte(s.ctrl[g], i, H2(h))
			s.slots[int(g)*GroupSize+i] = k
			s.n++
			return
		}
		p.Advance()
	}
}

// TestReferenceTableProperty drives random insert/lookup workloads
// through the reference table against a Go map: no key lost, none
// fabricated, across rehashes, and control words stay consistent with
// slot occupancy.
func TestReferenceTableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSwissSet(1)
		model := make(map[uint64]bool)
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(3000))
			if rng.Intn(2) == 0 {
				s.insert(k)
				model[k] = true
			} else {
				_, got := s.find(k)
				if got != model[k] {
					return false
				}
			}
		}
		if s.n != len(model) {
			return false
		}
		occupied := 0
		for g := range s.ctrl {
			for m := MatchOccupied(s.ctrl[g]); m != 0; m = Next(m) {
				i := g*GroupSize + First(m)
				occupied++
				if !model[s.slots[i]] {
					return false // occupied slot holds an unknown key
				}
				if h := hashKey(s.slots[i]); byteOf(s.ctrl[g], First(m)) != H2(h) {
					return false // control byte disagrees with slot hash
				}
			}
		}
		return occupied == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
