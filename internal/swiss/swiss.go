// Package swiss provides the control-byte group-probing primitives of
// an open-addressing "swiss table" (the design popularised by abseil's
// flat_hash_map): slots are organised in groups of eight, and each
// group carries one 64-bit control word holding a one-byte summary per
// slot — 0x80 for an empty slot, or the low seven bits of the slot
// key's hash (H2) for an occupied one. A lookup splits its hash into a
// group selector (H1) and the seven-bit fingerprint (H2), then scans
// whole groups at a time: one word load plus branch-free SWAR
// arithmetic yields a bitmask of candidate slots, so the common case
// touches one cache line of metadata instead of chasing a bucket
// chain through the heap.
//
// The decision-diagram kernel keeps three concrete tables on top of
// these primitives — the VNode/MNode unique tables (internal/dd) and
// the weight-interning cell table (internal/cnum). They are written
// out per key type rather than shared generically so the innermost
// simulation loop pays no interface or closure dispatch; everything in
// this package is a leaf function the compiler inlines into those
// loops.
//
// The tables deliberately have no tombstone state: deletion happens
// only inside the kernel's own garbage collection, which rebuilds the
// control words from the surviving population (rehash-on-load), so a
// probe can always terminate at the first empty slot.
package swiss

import "math/bits"

const (
	// GroupSize is the number of slots summarised by one control word.
	GroupSize = 8
	// GroupShift converts between slot and group indices.
	GroupShift = 3
	// Empty is the control byte of an unoccupied slot. Occupied slots
	// store an H2 fingerprint, whose high bit is always clear.
	Empty = 0x80
	// EmptyWord is a control word with all eight slots empty.
	EmptyWord uint64 = 0x8080808080808080

	loBits uint64 = 0x0101010101010101
	hiBits uint64 = 0x8080808080808080

	// MaxLoadNum/MaxLoadDen bound the table occupancy: a table grows
	// when residents exceed 7/8 of its slots. Well below that bound the
	// expected probe is a single group; rehash-on-load keeps it there
	// because garbage collection rebuilds rather than tombstones.
	MaxLoadNum = 7
	MaxLoadDen = 8
)

// H1 returns the group-selector part of a hash (everything above the
// seven fingerprint bits).
func H1(h uint64) uint64 { return h >> 7 }

// H2 returns the seven-bit fingerprint stored in the control byte of
// an occupied slot.
func H2(h uint64) uint8 { return uint8(h) & 0x7f }

// MatchH2 returns a bitmask with bit 8·i+7 set for each slot i of the
// group whose control byte equals h2. The SWAR zero-byte scan can set
// a false-positive bit for a slot above a genuine match (borrow
// propagation), so callers must confirm candidates with a full key
// comparison — which they need for the 7-bit fingerprint anyway.
func MatchH2(w uint64, h2 uint8) uint64 {
	x := w ^ (loBits * uint64(h2))
	return (x - loBits) &^ x & hiBits
}

// MatchEmpty returns a bitmask with bit 8·i+7 set for each empty slot
// of the group. With no tombstone state, the high bit of a control
// byte is set exactly when the slot is empty, so this is exact.
func MatchEmpty(w uint64) uint64 { return w & hiBits }

// MatchOccupied returns a bitmask with bit 8·i+7 set for each occupied
// slot of the group (used by iteration and rebuilds).
func MatchOccupied(w uint64) uint64 { return ^w & hiBits }

// First returns the slot index (0..7) of the lowest set bit in a match
// mask. Because SWAR false positives only occur above a genuine match,
// the first match of a MatchH2 mask used for empty-slot selection is
// always exact.
func First(mask uint64) int { return bits.TrailingZeros64(mask) >> GroupShift }

// Next clears the lowest set bit of a match mask, advancing iteration.
func Next(mask uint64) uint64 { return mask & (mask - 1) }

// SetByte returns the control word w with slot i's byte replaced by c.
func SetByte(w uint64, i int, c uint8) uint64 {
	sh := uint(i) * 8
	return w&^(0xff<<sh) | uint64(c)<<sh
}

// Probe iterates group indices in the triangular probe sequence
// g, g+1, g+3, g+6, ... (mod the group count). For a power-of-two
// group count the sequence visits every group exactly once in the
// first len cycles, so insertion into a non-full table always finds an
// empty slot and a lookup always terminates.
type Probe struct {
	g, i, mask uint64
}

// NewProbe starts a probe sequence for group-selector h1 over a table
// of mask+1 (power of two) groups.
func NewProbe(h1, mask uint64) Probe {
	return Probe{g: h1 & mask, mask: mask}
}

// Group returns the current group index.
func (p *Probe) Group() uint64 { return p.g }

// Advance steps to the next group in the sequence.
func (p *Probe) Advance() {
	p.i++
	p.g = (p.g + p.i) & p.mask
}

// GroupsFor returns the smallest power-of-two group count, at least
// min, whose slot capacity keeps n residents within the maximum load
// factor. min must be a power of two.
func GroupsFor(n, min int) int {
	g := min
	for g*GroupSize*MaxLoadNum/MaxLoadDen <= n {
		g *= 2
	}
	return g
}

// GrowAt returns the resident count at which a table of the given
// group count must rehash before the next insertion.
func GrowAt(groups int) int {
	return groups * GroupSize * MaxLoadNum / MaxLoadDen
}
