package ddsim

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c := GHZ(8)
	res, err := Simulate(c, BackendDD, PaperNoise(), Options{Runs: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 200 {
		t.Errorf("runs = %d", res.Runs)
	}
	// With mild noise most mass stays on the two GHZ outcomes.
	f := res.SampleFraction(0) + res.SampleFraction(1<<8-1)
	if f < 0.8 {
		t.Errorf("GHZ outcome mass = %v, want > 0.8 under paper noise", f)
	}
}

func TestAllBackendsViaFacade(t *testing.T) {
	c := QFT(4)
	for _, b := range Backends() {
		res, err := Simulate(c, b, NoNoise(), Options{Runs: 3, Seed: 2, TrackStates: []uint64{0}})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if math.Abs(res.TrackedProbs[0]-1.0/16) > 1e-9 {
			t.Errorf("%s: ô(|0000⟩) = %v, want 1/16", b, res.TrackedProbs[0])
		}
	}
}

func TestUnknownBackend(t *testing.T) {
	if _, err := Simulate(GHZ(2), "quantum-annealer", NoNoise(), Options{Runs: 1}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Factory("nope"); err == nil {
		t.Error("unknown factory accepted")
	}
}

func TestQASMFacade(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`
	c, err := ParseQASM("ghz3", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cx q[1],q[2];") {
		t.Errorf("round-tripped QASM missing gate:\n%s", out)
	}
	res, err := Simulate(c, BackendDD, NoNoise(), Options{Runs: 1, TrackStates: []uint64{0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TrackedProbs[0]-0.5) > 1e-12 || math.Abs(res.TrackedProbs[1]-0.5) > 1e-12 {
		t.Errorf("tracked probs = %v", res.TrackedProbs)
	}
}

func TestExactProbabilitiesFacade(t *testing.T) {
	probs, err := ExactProbabilities(GHZ(3), NoNoise())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[7]-0.5) > 1e-12 {
		t.Errorf("probs = %v", probs)
	}
}

func TestStochasticMatchesExactViaFacade(t *testing.T) {
	c := GHZ(4)
	m := NoiseModel{Depolarizing: 0.02, Damping: 0.05, PhaseFlip: 0.02}
	exact, err := ExactProbabilities(c, m)
	if err != nil {
		t.Fatal(err)
	}
	tracked := make([]uint64, 16)
	for i := range tracked {
		tracked[i] = uint64(i)
	}
	res, err := Simulate(c, BackendDD, m, Options{Runs: 4000, Seed: 3, TrackStates: tracked})
	if err != nil {
		t.Fatal(err)
	}
	radius := EstimateAccuracy(4000, 16, 0.01)
	for i := range tracked {
		if math.Abs(res.TrackedProbs[i]-exact[i]) > radius {
			t.Errorf("P(%d): stochastic %v vs exact %v (radius %v)",
				i, res.TrackedProbs[i], exact[i], radius)
		}
	}
}

func TestRequiredRuns(t *testing.T) {
	m, err := RequiredRuns(1000, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m < 30000 {
		t.Errorf("M = %d, want ≥ 30000 (paper's setting)", m)
	}
	if _, err := RequiredRuns(0, 0.01, 0.05); err == nil {
		t.Error("invalid property count accepted")
	}
}

// TestBatchSimulateNoiseSweep exercises the public batch API: a noise
// sweep through one shared pool must reproduce standalone Simulate
// results bit-for-bit and show monotonically degrading GHZ mass.
func TestBatchSimulateNoiseSweep(t *testing.T) {
	c := GHZ(6)
	scales := []float64{0, 1, 20}
	jobs := make([]BatchJob, len(scales))
	for i, s := range scales {
		jobs[i] = BatchJob{
			Circuit: c,
			Model: NoiseModel{
				Depolarizing: 0.001 * s, Damping: 0.002 * s, PhaseFlip: 0.001 * s,
			},
			Opts: Options{Runs: 300, Seed: 11, TrackStates: []uint64{0, 63}},
		}
	}
	results, err := BatchSimulate(context.Background(), BackendDD, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		solo, err := Simulate(c, BackendDD, job.Model, job.Opts)
		if err != nil {
			t.Fatal(err)
		}
		for l := range solo.TrackedProbs {
			if results[i].TrackedProbs[l] != solo.TrackedProbs[l] {
				t.Errorf("sweep point %d: batch ô[%d]=%v vs solo %v (not bit-identical)",
					i, l, results[i].TrackedProbs[l], solo.TrackedProbs[l])
			}
		}
	}
	mass := func(r *Result) float64 { return r.TrackedProbs[0] + r.TrackedProbs[1] }
	if !(mass(results[0]) > mass(results[2])) {
		t.Errorf("GHZ mass did not degrade across sweep: %v vs %v",
			mass(results[0]), mass(results[2]))
	}
}

// TestSimulateContextAdaptive drives adaptive stopping through the
// facade: runs used must match RequiredRuns and stay below the budget.
func TestSimulateContextAdaptive(t *testing.T) {
	res, err := SimulateContext(context.Background(), GHZ(6), BackendDD, PaperNoise(), Options{
		Runs: 100000, Seed: 2, TrackStates: []uint64{0, 63},
		TargetAccuracy: 0.08, TargetConfidence: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	need, err := RequiredRuns(2, 0.08, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != need {
		t.Errorf("adaptive runs = %d, RequiredRuns = %d", res.Runs, need)
	}
	// δ = 1 − 0.95 differs from the literal 0.05 by one ULP, so the
	// radii agree to float precision, not bitwise.
	if math.Abs(res.ConfidenceRadius-EstimateAccuracy(res.Runs, 2, 0.05)) > 1e-12 {
		t.Errorf("radius %v vs EstimateAccuracy %v",
			res.ConfidenceRadius, EstimateAccuracy(res.Runs, 2, 0.05))
	}
}

func TestNewBackendGateByGate(t *testing.T) {
	c := NewCircuit("bell", 2)
	c.H(0).CX(0, 1)
	b, err := NewBackend(c, BackendDD)
	if err != nil {
		t.Fatal(err)
	}
	b.ApplyOp(0)
	b.ApplyOp(1)
	if p := b.Probability(3); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(|11⟩) = %v", p)
	}
}
