package ddsim_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"ddsim"
)

// v2JobKey is an independent reimplementation of the pre-extension
// (v2) wire format. Legacy uniform jobs must keep hashing to exactly
// this value forever — the ddsimd result cache persists keys across
// releases — so the v3 appendix may only fire for models that
// actually carry extended channels.
func v2JobKey(t *testing.T, c *ddsim.Circuit, backend string, models []ddsim.NoiseModel, opts ddsim.Options) string {
	t.Helper()
	src, err := ddsim.WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Canonical()
	if o.Mode == ddsim.ModeExact {
		backend = "-"
	}
	h := sha256.New()
	fmt.Fprintf(h, "ddsim-job-v2\nbackend=%s\nqasm=%d:%s\n", backend, len(src), src)
	for _, m := range models {
		fmt.Fprintf(h, "noise=%.17g,%.17g,%.17g,%t\n",
			m.Depolarizing, m.Damping, m.PhaseFlip, m.DampingAsEvent)
	}
	fmt.Fprintf(h, "runs=%d\nseed=%d\nshots=%d\nfidelity=%t\ntimeout=%d\naccuracy=%.17g\nconfidence=%.17g\nchunk=%d\n",
		o.Runs, o.Seed, o.Shots, o.TrackFidelity, int64(o.Timeout),
		o.TargetAccuracy, o.TargetConfidence, o.ChunkSize)
	for _, ts := range o.TrackStates {
		fmt.Fprintf(h, "track=%d\n", ts)
	}
	fmt.Fprintf(h, "mode=%s\nexact_backend=%s\n", o.Mode, o.ExactBackend)
	return hex.EncodeToString(h.Sum(nil))
}

// TestJobKeyLegacyUniformKeysByteIdentical pins the compatibility
// contract of the v3 extension: every job whose models are plain
// uniform (no device, crosstalk, idle noise or twirling) hashes to a
// key byte-identical to the v2 serialisation.
func TestJobKeyLegacyUniformKeysByteIdentical(t *testing.T) {
	circ := ddsim.GHZ(4)
	cases := []struct {
		name    string
		backend string
		models  []ddsim.NoiseModel
		opts    ddsim.Options
	}{
		{"paper-noise", ddsim.BackendDD,
			[]ddsim.NoiseModel{ddsim.PaperNoise()},
			ddsim.Options{Runs: 30000, Seed: 1, TrackStates: []uint64{0, 15}}},
		{"noise-free", ddsim.BackendStatevector,
			[]ddsim.NoiseModel{ddsim.NoNoise()},
			ddsim.Options{Runs: 100, Seed: 7, Shots: 2}},
		{"sweep", ddsim.BackendSparse,
			[]ddsim.NoiseModel{ddsim.NoNoise(), ddsim.PaperNoise(), ddsim.PaperNoise().Scale(2)},
			ddsim.Options{Runs: 500, Seed: 3, TargetAccuracy: 0.02, TargetConfidence: 0.95}},
		{"exact-mode", ddsim.BackendDD,
			[]ddsim.NoiseModel{ddsim.PaperNoise()},
			ddsim.Options{Mode: ddsim.ModeExact, ExactBackend: ddsim.ExactDensity}},
	}
	for _, tc := range cases {
		got, err := ddsim.JobKey(circ, tc.backend, tc.models, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := v2JobKey(t, circ, tc.backend, tc.models, tc.opts); got != want {
			t.Errorf("%s: JobKey = %s, want the v2 serialisation %s", tc.name, got, want)
		}
	}
}

// TestJobKeyExtendedFieldsMoveKey: each extended channel family must
// change the job identity — both against the uniform baseline and
// against each other — and changing an extended parameter must change
// the key again.
func TestJobKeyExtendedFieldsMoveKey(t *testing.T) {
	circ := ddsim.GHZ(4)
	opts := ddsim.Options{Runs: 1000, Seed: 1}
	base := ddsim.PaperNoise()

	dev := &ddsim.Device{
		Name:        "k4",
		Qubits:      []ddsim.DeviceQubit{{T1us: 80, T2us: 100}, {T1us: 60, T2us: 60}, {T1us: 100, T2us: 120}, {T1us: 50, T2us: 40}},
		GateTimesNs: map[string]float64{"h": 35, "cx": 300},
		GateErrors:  map[string]float64{"cx": 0.01, "*": 0.0005},
	}
	variants := []struct {
		name  string
		model ddsim.NoiseModel
	}{
		{"uniform", base},
		{"device", ddsim.NoiseModel{Device: dev}},
		{"crosstalk", func() ddsim.NoiseModel {
			m := base
			m.Crosstalk = &ddsim.Crosstalk{Strength: 0.02, ZZBias: 0.5}
			return m
		}()},
		{"idle", func() ddsim.NoiseModel {
			m := base
			m.Idle = &ddsim.IdleNoise{Damping: 0.01, Dephasing: 0.02}
			return m
		}()},
		{"twirled", base.Twirl()},
		{"crosstalk-stronger", func() ddsim.NoiseModel {
			m := base
			m.Crosstalk = &ddsim.Crosstalk{Strength: 0.03, ZZBias: 0.5}
			return m
		}()},
	}
	keys := map[string]string{}
	for _, v := range variants {
		k, err := ddsim.JobKey(circ, ddsim.BackendDD, []ddsim.NoiseModel{v.model}, opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s share a job key %s", v.name, prev, k)
			}
		}
		keys[v.name] = k
	}
}

// TestJobKeyExtendedCanonicalisesStably: an extended model rebuilt
// with its maps populated in a different insertion order must hash
// identically — the v3 appendix serialises map entries sorted by key.
func TestJobKeyExtendedCanonicalisesStably(t *testing.T) {
	circ := ddsim.GHZ(3)
	opts := ddsim.Options{Runs: 500, Seed: 2}
	build := func(reverse bool) ddsim.NoiseModel {
		gateTimes := map[string]float64{}
		gateErrs := map[string]float64{}
		times := []struct {
			k string
			v float64
		}{{"h", 35}, {"cx", 300}, {"x", 40}, {"rz", 0}}
		errs := []struct {
			k string
			v float64
		}{{"*", 0.0005}, {"cx", 0.01}, {"ccx", 0.03}}
		if reverse {
			for i := len(times) - 1; i >= 0; i-- {
				gateTimes[times[i].k] = times[i].v
			}
			for i := len(errs) - 1; i >= 0; i-- {
				gateErrs[errs[i].k] = errs[i].v
			}
		} else {
			for _, e := range times {
				gateTimes[e.k] = e.v
			}
			for _, e := range errs {
				gateErrs[e.k] = e.v
			}
		}
		return ddsim.NoiseModel{
			Device: &ddsim.Device{
				Name:        "stable",
				Qubits:      []ddsim.DeviceQubit{{T1us: 70, T2us: 90}, {T1us: 55, T2us: 60}, {T1us: 90, T2us: 100}},
				GateTimesNs: gateTimes,
				GateErrors:  gateErrs,
			},
			Crosstalk: &ddsim.Crosstalk{Strength: 0.02, ZZBias: 0.25},
			Idle:      &ddsim.IdleNoise{MomentNs: 120},
			Twirled:   true,
		}
	}
	var keys [4]string
	for i := range keys {
		m := build(i%2 == 1)
		k, err := ddsim.JobKey(circ, ddsim.BackendDD, []ddsim.NoiseModel{m}, opts)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("extended key unstable: call %d gave %s, call 0 gave %s", i, keys[i], keys[0])
		}
	}
}
