package ddsim_test

import (
	"testing"

	"ddsim"
	"ddsim/internal/circuit"
	"ddsim/internal/qbench"
	"ddsim/internal/telemetry"
)

// TestCheckpointingReducesGateApplications is the acceptance check of
// the checkpoint engine on a builtin benchmark whose first random site
// sits late in the circuit: Bernstein–Vazirani applies every gate
// before its measurements, so on a perfect (noise-free) device the
// whole gate sequence is a shared deterministic prefix. Forking from
// the per-worker checkpoint must cut total gate applications for the
// job by well over 30% — asserted via the engine's telemetry counters
// — while staying bit-identical to the plain replay with the same
// seed.
func TestCheckpointingReducesGateApplications(t *testing.T) {
	bench, err := qbench.ByName("bv", 15)
	if err != nil {
		t.Fatal(err)
	}
	circ := bench.Circuit
	firstSite := -1
	for i := range circ.Ops {
		if circ.Ops[i].Kind == circuit.KindMeasure || circ.Ops[i].Kind == circuit.KindReset {
			firstSite = i
			break
		}
	}
	if firstSite < len(circ.Ops)/2 {
		t.Fatalf("precondition broken: bv's first random site is op %d of %d, not past halfway",
			firstSite, len(circ.Ops))
	}

	opts := ddsim.Options{Runs: 200, Seed: 9, Workers: 2, ChunkSize: 32}

	run := func(mode string) (*ddsim.Result, int64, int64) {
		opts.Checkpointing = mode
		appliedBefore := telemetry.GateApplications.Value()
		forksBefore := telemetry.CheckpointForks.Value()
		res, err := ddsim.Simulate(circ, ddsim.BackendDD, ddsim.NoNoise(), opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		return res, telemetry.GateApplications.Value() - appliedBefore,
			telemetry.CheckpointForks.Value() - forksBefore
	}

	plain, appliedPlain, _ := run(ddsim.CheckpointOff)
	forked, appliedForked, forks := run(ddsim.CheckpointAuto)

	if !forked.Checkpointed || plain.Checkpointed {
		t.Fatalf("Checkpointed flags wrong: off=%v auto=%v", plain.Checkpointed, forked.Checkpointed)
	}
	if forks < int64(opts.Runs) {
		t.Errorf("forks served = %d, want at least one per trajectory (%d)", forks, opts.Runs)
	}
	if appliedForked > appliedPlain*7/10 {
		t.Errorf("checkpointing applied %d gates vs %d plain — less than the required 30%% reduction",
			appliedForked, appliedPlain)
	}

	// Bit-identical estimates: same sampled histogram, same classical
	// register histogram.
	if len(plain.Counts) != len(forked.Counts) || len(plain.ClassicalCounts) != len(forked.ClassicalCounts) {
		t.Fatal("histogram shapes differ between checkpointed and plain runs")
	}
	for k, v := range plain.Counts {
		if forked.Counts[k] != v {
			t.Errorf("counts[%d] = %d plain vs %d checkpointed", k, v, forked.Counts[k])
		}
	}
	for k, v := range plain.ClassicalCounts {
		if forked.ClassicalCounts[k] != v {
			t.Errorf("classical[%d] = %d plain vs %d checkpointed", k, v, forked.ClassicalCounts[k])
		}
	}
}
